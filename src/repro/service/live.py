"""The live serving layer: QueryService semantics over a mutable index.

The parent :class:`~repro.service.service.QueryService` can cache
aggressively because its index is immutable while open.  A
:class:`~repro.live.live.LiveIndex` mutates, so the service keys every
cache layer's validity on the index's ``(epoch, mutation)`` version:

postings (per segment)
    each immutable base segment gets its own striped LRU, exactly like the
    sharded service's per-shard caches -- the fan-out path fetches through
    the segment indexes, so that is where caching pays.  Segment postings
    cannot change within an epoch (adds only touch the in-memory delta and
    deletes are filtered at result level), so these caches survive every
    add/delete and are rebuilt only on an epoch bump (compaction swaps the
    segment set).  The delta is memory-resident and needs no cache.

results
    entries are stored tagged with the index version they were computed
    against and served only while that version is still current, so a
    result computed concurrently with a mutation can never be served after
    it -- even if the store races the invalidation sweep.

plans
    decomposition depends only on the query, ``mss`` and the coding, none
    of which a mutation can change -- plans survive adds and deletes and
    are dropped only on an *epoch bump* (compaction), the conservative
    boundary where the whole on-disk layout changed.

Execution fans out over the index's sources -- every base segment plus the
in-memory delta -- exactly like the sharded service fans out over shards
(:func:`repro.exec.fanout.execute_on_shards`); sources hold disjoint tids,
and tombstoned trees are filtered from the merged matches.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.exec.executor import QueryResult
from repro.exec.fanout import execute_on_shards, finish_stats, make_fanout_pool
from repro.live.live import LiveIndex
from repro.service.cache import CacheStats, StripedLRUCache
from repro.service.service import PreparedQuery, QueryLike, QueryService, ServiceStats
from repro.storage.bptree import ProbeStats


@dataclass
class LiveServiceStats(ServiceStats):
    """Service counters plus the live index's mutation-side state."""

    epoch: int = 0
    delta_trees: int = 0
    tombstones: int = 0
    wal_ops: int = 0
    #: Times a version change forced a cache invalidation.
    invalidations: int = 0

    def extras_dict(self) -> Dict[str, object]:
        """The mutation-side state, added under its own key (core shape untouched)."""
        return {
            "live": {
                "epoch": self.epoch,
                "delta_trees": self.delta_trees,
                "tombstones": self.tombstones,
                "wal_ops": self.wal_ops,
                "invalidations": self.invalidations,
            },
        }


class LiveQueryService(QueryService):
    """Cached, batched serving over a :class:`~repro.live.live.LiveIndex`.

    Parameters are those of :class:`QueryService` (minus ``store``, implied
    by the index) plus ``max_threads``, the fan-out pool width over the
    index's segments + delta.  ``postings_cache_size`` is the *total*
    budget, split evenly across the base segments.
    """

    flavor = "live"

    def __init__(
        self,
        index: LiveIndex,
        strategy: Optional[str] = None,
        pad: bool = True,
        plan_cache_size: int = 256,
        postings_cache_size: int = 4096,
        result_cache_size: int = 1024,
        stripes: int = 8,
        max_threads: Optional[int] = None,
    ):
        # The parent's postings layer would attach to LiveIndex.lookup, the
        # merged compatibility path the fan-out execution never takes; the
        # budget goes to per-segment caches below instead.
        super().__init__(
            index,
            store=index.store,
            strategy=strategy,
            pad=pad,
            plan_cache_size=plan_cache_size,
            postings_cache_size=0,
            result_cache_size=result_cache_size,
            stripes=stripes,
        )
        self._pool = make_fanout_pool(
            max(index.segment_count + 1, 2), max_threads, thread_name_prefix="live-svc"
        )
        self._postings_budget = postings_cache_size
        self._cache_stripes = stripes
        #: ``(segment index, cache)`` pairs currently attached.
        self._segment_caches: List[Tuple[object, StripedLRUCache]] = []
        self._retired_postings = CacheStats()  # counters of detached caches
        self._attach_segment_caches()
        self._seen_version = index.version
        self._invalidations = 0

    # ------------------------------------------------------------------
    @classmethod
    def open(cls, index_path: str, **kwargs: object) -> "LiveQueryService":
        """Open a live index from its manifest file for serving."""
        index = LiveIndex.open(index_path)
        service = cls(index, **kwargs)  # type: ignore[arg-type]
        service._owned_resources.append(index)
        return service

    def close(self) -> None:
        """Shut the pool down, detach every cache, release owned resources."""
        self._detach_segment_caches()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        super().close()

    # ------------------------------------------------------------------
    # Per-segment posting caches
    # ------------------------------------------------------------------
    def _detach_segment_caches(self) -> None:
        for segment_index, cache in self._segment_caches:
            self._retired_postings = self._retired_postings + cache.stats()
            cache.clear()
            segment_index.attach_postings_cache(None)  # type: ignore[attr-defined]
        self._segment_caches = []

    def _attach_segment_caches(self) -> None:
        """(Re)install one striped LRU per current base segment."""
        self._detach_segment_caches()
        segments = self.index.segments
        if not self._postings_budget or not segments:
            return
        per_segment = max(1, self._postings_budget // len(segments))
        for segment in segments:
            cache = StripedLRUCache(per_segment, stripes=self._cache_stripes)
            segment.index.attach_postings_cache(cache)
            self._segment_caches.append((segment.index, cache))

    # ------------------------------------------------------------------
    # Version-keyed invalidation
    # ------------------------------------------------------------------
    def _sync_with_index(self) -> None:
        """React to mutations since the last run: drop stale results, and on
        an epoch bump also drop plans and rebuild the per-segment caches."""
        version = self.index.version
        if version == self._seen_version:
            return
        if self._result_cache is not None:
            self._result_cache.clear()
        if version[0] != self._seen_version[0]:  # epoch bump: new segment set
            if self._plan_cache is not None:
                self._plan_cache.clear()
            self._attach_segment_caches()
        self._invalidations += 1
        self._seen_version = version

    # ------------------------------------------------------------------
    # Versioned result cache
    # ------------------------------------------------------------------
    def _cached_result(self, prepared: PreparedQuery) -> Optional[QueryResult]:
        """A cached result, served only if its version tag is still current."""
        if self._result_cache is None:
            return None
        entry = self._result_cache.get(prepared.normalized)
        if entry is None:
            return None
        version, result = entry  # type: ignore[misc]
        if version != self.index.version:
            return None
        return result

    def _remember_result(
        self,
        prepared: PreparedQuery,
        result: QueryResult,
        version: Optional[Tuple[int, int]] = None,
    ) -> None:
        """Cache *result* tagged with the version it was computed against.

        A result that raced a mutation carries a stale tag and is simply
        never served -- the read-side version check makes the write-side
        race harmless.
        """
        if self._result_cache is None:
            return
        if version is None:
            version = self.index.version
        self._result_cache.put(prepared.normalized, (version, result))

    # ------------------------------------------------------------------
    # Execution: fan out over segments + delta
    # ------------------------------------------------------------------
    def _execute_fanout(
        self,
        prepared: PreparedQuery,
        started: float,
        handles: Optional[Sequence[object]] = None,
        fetch=None,
    ) -> QueryResult:
        sources = handles if handles is not None else self.index.segment_handles()
        result, stats = execute_on_shards(
            prepared.query,
            prepared.cover,
            prepared.key_bytes,
            sources,
            self.index.coding,
            pool=self._pool,
            fetch=fetch,
            exclude_tids=self.index.tombstones,
        )
        result.stats = finish_stats(stats, self.index.coding, self.strategy, started)
        return result

    def _run_impl(self, query: QueryLike) -> QueryResult:
        """Evaluate one query against the current state of the live index.

        Overrides the parent's template rather than just the uncached hook:
        the version tag a result is remembered under must be captured
        *before* execution, so a result that raced a mutation is tagged
        stale and never served.
        """
        self._sync_with_index()
        version = self.index.version
        started = time.perf_counter()
        with obs.trace("prepare") as span:
            prepared = self.prepare(query)
            span.set(cover=len(prepared.cover))
        result = self._cached_result(prepared)
        obs.annotate(
            result_cache="hit" if result is not None else "miss", epoch=version[0]
        )
        if result is None:
            result = self._execute_fanout(prepared, started)
            self._remember_result(prepared, result, version)
        self._queries += 1
        return result

    def _run_many_impl(self, queries: Sequence[QueryLike]) -> List[QueryResult]:
        """Evaluate a batch; each distinct cover key is fetched once per source."""
        self._sync_with_index()
        version = self.index.version
        prepared_batch = [self.prepare(query) for query in queries]
        cached: List[Optional[QueryResult]] = [
            self._cached_result(prepared) for prepared in prepared_batch
        ]
        obs.annotate(result_cache_hits=sum(1 for hit in cached if hit is not None))

        distinct: List[bytes] = []
        seen = set()
        total_keys = 0
        for prepared, hit in zip(prepared_batch, cached):
            if hit is not None:
                continue
            for key in prepared.key_bytes:
                total_keys += 1
                if key not in seen:
                    seen.add(key)
                    distinct.append(key)

        handles = self.index.segment_handles()  # one snapshot for the batch
        positions = {id(handle): pos for pos, handle in enumerate(handles)}

        def fill_memo(handle) -> Tuple[int, Dict[bytes, List[object]]]:
            return positions[id(handle)], {key: handle.index.lookup(key) for key in distinct}

        if self._pool is not None and len(handles) > 1 and distinct:
            memos = dict(self._pool.map(fill_memo, handles))
        else:
            memos = dict(fill_memo(handle) for handle in handles)

        def from_memo(handle, key: bytes) -> List[object]:
            return memos[positions[id(handle)]][key]

        results: List[QueryResult] = []
        computed: Dict[str, QueryResult] = {}
        for prepared, hit in zip(prepared_batch, cached):
            if hit is not None:
                results.append(hit)
                continue
            result = computed.get(prepared.normalized)
            if result is None:
                result = self._execute_fanout(
                    prepared, time.perf_counter(), handles=handles, fetch=from_memo
                )
                self._remember_result(prepared, result, version)
                computed[prepared.normalized] = result
            results.append(result)
        self._queries += len(prepared_batch)
        self._batches += 1
        self._batch_keys_deduped += total_keys - len(distinct)
        return results

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> LiveServiceStats:
        """Service counters plus the index's delta/tombstone/WAL state.

        ``postings`` aggregates the per-segment caches, including counters
        of caches retired by past compactions.
        """
        base = super().stats()
        postings = self._retired_postings
        for _, cache in self._segment_caches:
            postings = postings + cache.stats()
        # Fan-out lookups land on the segment indexes, not the merged path;
        # report both summed (mirrors ShardedQueryService.stats()).
        probes = base.probes  # the merged-path snapshot
        for segment in self.index.segments:
            snapshot: ProbeStats = segment.index.probe_stats
            probes.gets += snapshot.gets
            probes.cache_hits += snapshot.cache_hits
            probes.tree_descents += snapshot.tree_descents
        return LiveServiceStats(
            queries=base.queries,
            batches=base.batches,
            batch_keys_deduped=base.batch_keys_deduped,
            plans=base.plans,
            postings=postings,
            results=base.results,
            probes=base.probes,
            epoch=self.index.epoch,
            delta_trees=self.index.delta.tree_count,
            tombstones=len(self.index.tombstones),
            wal_ops=self.index.wal.op_count,
            invalidations=self._invalidations,
        )

    def clear_caches(self) -> None:
        """Drop plans, results and every per-segment posting cache."""
        super().clear_caches()
        for _, cache in self._segment_caches:
            cache.clear()
