"""The query service: a serving layer over one open subtree index.

:class:`~repro.exec.executor.QueryExecutor` re-runs the whole pipeline --
parse, decompose, fetch, join -- on every call.  That is the right shape for
a one-off experiment and the wrong shape for a server, where the same
handful of query templates arrives millions of times.  The service keeps
three caches in front of the pipeline:

prepared-query cache
    parse + decomposition are pure functions of the query text and the index
    parameters, so their output (a :class:`PreparedQuery`: the parsed tree,
    its cover and the cover's canonical key bytes) is cached under the
    *normalized* query string.  ``NP( DT ) ( NN )``, ``NP(DT)(NN)`` and the
    equivalent path form all share one entry.

posting cache
    a lock-striped LRU of *decoded* posting lists installed in front of the
    B+Tree (:meth:`repro.core.index.SubtreeIndex.attach_postings_cache`), so
    repeated cover keys skip both the tree descent and posting decoding.
    (The B+Tree additionally offers a raw-value read-through hook,
    :meth:`repro.storage.bptree.BPlusTree.attach_cache`, for callers below
    the decode step.)

result cache
    complete :class:`~repro.exec.executor.QueryResult` objects keyed by the
    normalized query string.  The index is immutable while open, so an
    identical repeated query can be answered without any join work at all.
    Size 0 disables this layer.

On top of these, :meth:`QueryService.run_many` batches: it prepares every
query first, fetches each *distinct* cover key exactly once, and joins each
query against the shared fetch memo.  All structures are thread-safe -- the
caches stripe their locks and the B+Tree serialises cache-missing descents
-- so one service instance can sit behind a thread pool.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.core.index import SubtreeIndex
from repro.corpus.store import Corpus, TreeStore, data_file_path
from repro.exec.executor import (
    ExecutionStats,
    QueryResult,
    decompose_query,
    default_strategy,
    join_postings,
)
from repro.query.covers import Cover
from repro.query.model import QueryTree
from repro.query.parser import parse_query
from repro.service.cache import CacheStats, StripedLRUCache
from repro.storage.bptree import ProbeStats

#: Anything `run` / `run_many` accept as a query.
QueryLike = Union[str, QueryTree]


@dataclass(frozen=True)
class PreparedQuery:
    """The cacheable output of the parse + decomposition stages.

    Immutable and shared between threads: executions read the cover and key
    bytes but never mutate them.
    """

    normalized: str
    query: QueryTree
    cover: Cover
    key_bytes: Tuple[bytes, ...]

    @property
    def distinct_keys(self) -> frozenset:
        """The distinct canonical cover keys this query fetches."""
        return frozenset(self.key_bytes)


@dataclass
class ServiceStats:
    """One snapshot of every counter the service keeps.

    ``plans`` covers the prepared-query cache, ``postings`` the lock-striped
    posting cache, ``results`` the whole-result cache, and ``probes`` the
    index's lookup counters (``probes.tree_descents`` is the number of
    actual B+Tree descents -- the disk I/O proxy).
    """

    queries: int = 0
    batches: int = 0
    batch_keys_deduped: int = 0
    plans: CacheStats = field(default_factory=CacheStats)
    postings: CacheStats = field(default_factory=CacheStats)
    results: CacheStats = field(default_factory=CacheStats)
    probes: ProbeStats = field(default_factory=ProbeStats)

    def as_dict(self) -> Dict[str, object]:
        """The merged, flavor-independent dict shape of these counters.

        All three service flavors (plain / sharded / live) emit exactly
        these keys -- the ``/stats`` endpoint and the metrics exporter rely
        on the shape being identical, so they never branch per flavor.
        Subclasses add their flavor-specific state under *additional* keys
        (see :meth:`extras_dict`) without touching this core shape.
        """
        payload: Dict[str, object] = {
            "queries": self.queries,
            "batches": self.batches,
            "batch_keys_deduped": self.batch_keys_deduped,
            "caches": {
                name: {
                    "hits": cache.hits,
                    "misses": cache.misses,
                    "lookups": cache.lookups,
                    "evictions": cache.evictions,
                    "size": cache.size,
                    "capacity": cache.capacity,
                    "hit_rate": cache.hit_rate,
                }
                for name, cache in (
                    ("plans", self.plans),
                    ("postings", self.postings),
                    ("results", self.results),
                )
            },
            "probes": {
                "gets": self.probes.gets,
                "cache_hits": self.probes.cache_hits,
                "tree_descents": self.probes.tree_descents,
                "hit_rate": self.probes.hit_rate,
            },
        }
        payload.update(self.extras_dict())
        return payload

    def extras_dict(self) -> Dict[str, object]:
        """Flavor-specific additions to :meth:`as_dict` (none for plain)."""
        return {}


class QueryService:
    """Serves repeated and concurrent queries over one open index.

    Parameters
    ----------
    index:
        An open :class:`~repro.core.index.SubtreeIndex`.
    store:
        Data file or in-memory corpus; required for filter-based coding.
        Both are safe under concurrency (``TreeStore`` serialises record
        reads on its shared handle); an in-memory
        :class:`~repro.corpus.store.Corpus` avoids that lock entirely for
        heavily threaded filter-based serving.
    strategy / pad:
        Decomposition knobs, as on :class:`~repro.exec.executor.QueryExecutor`.
    plan_cache_size / postings_cache_size / result_cache_size:
        Entry bounds of the three LRU caches; size 0 disables that layer
        entirely.  Cached results are shared objects and must be treated as
        read-only by callers.
    stripes:
        Lock stripes per cache; raise for heavily threaded workloads.
    """

    #: Span attribute naming the serving flavor ("plain" / "sharded" / "live").
    flavor = "plain"

    def __init__(
        self,
        index: SubtreeIndex,
        store: Optional[TreeStore | Corpus] = None,
        strategy: Optional[str] = None,
        pad: bool = True,
        plan_cache_size: int = 256,
        postings_cache_size: int = 4096,
        result_cache_size: int = 1024,
        stripes: int = 8,
    ):
        self.index = index
        self.store = store
        self.pad = pad
        self.strategy = strategy if strategy is not None else default_strategy(index.coding)

        def make_cache(size: int) -> Optional[StripedLRUCache]:
            return StripedLRUCache(size, stripes=stripes) if size else None

        self._plan_cache = make_cache(plan_cache_size)
        self._postings_cache = make_cache(postings_cache_size)
        self._result_cache = make_cache(result_cache_size)
        if self._postings_cache is not None:
            index.attach_postings_cache(self._postings_cache)
        self._owned_resources: List[object] = []
        # Telemetry counters, deliberately lock-free like ProbeStats: exact
        # single-threaded, may undercount slightly under concurrency.  A
        # lock here would put every fully-cached run() behind one global
        # mutex for nothing but accounting.
        self._queries = 0
        self._batches = 0
        self._batch_keys_deduped = 0

    # ------------------------------------------------------------------
    # Construction from files
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, index_path: str, **kwargs: object) -> "QueryService":
        """Open an index file (and its ``.data`` file, if present) for serving.

        Pointed at a sharded-index manifest this returns a
        :class:`~repro.service.sharded.ShardedQueryService`, and at a
        live-index manifest a :class:`~repro.service.live.LiveQueryService`
        -- both serve the same API.  The service owns what it opens:
        :meth:`close` releases every file.
        """
        from repro.shard.manifest import is_manifest  # local: shard builds on service

        if cls is QueryService and is_manifest(index_path):
            from repro.service.sharded import ShardedQueryService

            return ShardedQueryService.open(index_path, **kwargs)
        from repro.live.manifest import is_live_manifest  # local: live builds on service

        if cls is QueryService and is_live_manifest(index_path):
            from repro.service.live import LiveQueryService

            return LiveQueryService.open(index_path, **kwargs)
        index = SubtreeIndex.open(index_path)  # raises FileNotFoundError if missing
        data_path = data_file_path(index_path)
        store = TreeStore(data_path) if os.path.exists(data_path) else None
        service = cls(index, store=store, **kwargs)  # type: ignore[arg-type]
        service._owned_resources.append(index)
        if store is not None:
            service._owned_resources.append(store)
        return service

    def close(self) -> None:
        """Clear the caches and close any resources opened by :meth:`open`."""
        self.clear_caches()
        self.index.attach_postings_cache(None)
        for resource in self._owned_resources:
            resource.close()  # type: ignore[attr-defined]
        self._owned_resources.clear()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Stage 1: prepared queries
    # ------------------------------------------------------------------
    def prepare(self, query: QueryLike) -> PreparedQuery:
        """Parse and decompose *query*, reusing the cached plan when possible.

        Query strings are normalized by parsing and re-serialising, so
        whitespace variants and the linear path form share a cache entry.  A
        raw-text alias entry is kept as well, making the exact-repeat case a
        single cache probe with no parsing at all.
        """
        if isinstance(query, QueryTree):
            return self._prepare_parsed(query.root.to_string(), query)

        text_key = query.strip()
        cache = self._plan_cache
        if cache is not None:
            cached = cache.get(text_key)
            if cached is not None:
                return cached  # type: ignore[return-value]
        parsed = parse_query(query)
        prepared = self._prepare_parsed(parsed.root.to_string(), parsed)
        if cache is not None and text_key != prepared.normalized:
            cache.put(text_key, prepared)
        return prepared

    def _prepare_parsed(self, normalized: str, parsed: QueryTree) -> PreparedQuery:
        cache = self._plan_cache
        if cache is not None:
            cached = cache.get(normalized)
            if cached is not None:
                return cached  # type: ignore[return-value]
        cover = decompose_query(parsed, self.index.mss, self.strategy, pad=self.pad)
        keys = tuple(subtree.key_bytes() for subtree in cover.subtrees)
        prepared = PreparedQuery(
            normalized=normalized, query=parsed, cover=cover, key_bytes=keys
        )
        if cache is not None:
            cache.put(normalized, prepared)
        return prepared

    # ------------------------------------------------------------------
    # Stages 2+3: execution
    # ------------------------------------------------------------------
    def _execute_prepared(
        self,
        prepared: PreparedQuery,
        postings: Sequence[Sequence[object]],
        started: float,
    ) -> QueryResult:
        stats = ExecutionStats(
            coding=self.index.coding.name,
            strategy=self.strategy,
            cover_size=len(prepared.cover),
            join_count=prepared.cover.join_count,
            postings_fetched=sum(len(plist) for plist in postings),
        )
        result = join_postings(
            prepared.query,
            prepared.cover,
            postings,
            self.index.coding,
            store=self.store,
            stats=stats,
        )
        stats.elapsed_seconds = time.perf_counter() - started
        result.stats = stats
        return result

    def _cached_result(self, prepared: PreparedQuery) -> Optional[QueryResult]:
        if self._result_cache is None:
            return None
        return self._result_cache.get(prepared.normalized)  # type: ignore[return-value]

    def _remember_result(self, prepared: PreparedQuery, result: QueryResult) -> None:
        if self._result_cache is not None:
            self._result_cache.put(prepared.normalized, result)

    def run(self, query: QueryLike) -> QueryResult:
        """Evaluate one query through the cached pipeline.

        An identical (up to normalization) earlier query is answered straight
        from the result cache; its ``stats`` describe the execution that
        originally produced it.

        With tracing enabled (:func:`repro.obs.enable`) the whole run is
        wrapped in a ``query`` span whose children are the pipeline stages;
        the flavor subclasses inherit this wrapper and override only the
        uncached-execution hook.
        """
        if not obs.enabled():
            return self._run_impl(query)
        text = query.strip() if isinstance(query, str) else query.root.to_string()
        with obs.trace(
            "query", flavor=self.flavor, query=text, query_sha1=obs.query_hash(text)
        ) as span:
            result = self._run_impl(query)
            span.set(matches=result.total_matches)
            return result

    def _run_impl(self, query: QueryLike) -> QueryResult:
        started = time.perf_counter()
        with obs.trace("prepare") as span:
            prepared = self.prepare(query)
            span.set(cover=len(prepared.cover))
        result = self._cached_result(prepared)
        obs.annotate(result_cache="hit" if result is not None else "miss")
        if result is None:
            result = self._execute_uncached(prepared, started)
            self._remember_result(prepared, result)
        self._queries += 1
        return result

    def _execute_uncached(self, prepared: PreparedQuery, started: float) -> QueryResult:
        """Stages 2+3 for one query that missed the result cache."""
        postings = self._fetch_for_run(prepared)
        return self._execute_prepared(prepared, postings, started)

    def _fetch_for_run(self, prepared: PreparedQuery) -> List[List[object]]:
        if not obs.enabled():
            return [self.index.lookup(key) for key in prepared.key_bytes]
        with obs.trace("fetch_postings", keys=len(prepared.key_bytes)) as span:
            postings: List[List[object]] = []
            for key in prepared.key_bytes:
                with obs.trace("fetch_key", key=key.decode("utf-8", "replace")) as key_span:
                    plist = self.index.lookup(key)
                    key_span.set(postings=len(plist))
                postings.append(plist)
            span.set(postings=sum(len(plist) for plist in postings))
        return postings

    def run_many(self, queries: Sequence[QueryLike]) -> List[QueryResult]:
        """Evaluate a batch, fetching each distinct cover key exactly once.

        The batch is prepared first; the union of cover keys is deduplicated
        and fetched into a memo (one :meth:`~repro.core.index.SubtreeIndex.lookup`
        -- hence at most one B+Tree descent -- per distinct key), every query
        joins against the shared memo, and identical queries share one join.
        Results keep the input order; each result's ``stats.elapsed_seconds``
        covers only its own join, since the prepare/fetch work is shared by
        the whole batch (time the ``run_many`` call itself for batch totals).
        """
        if not obs.enabled():
            return self._run_many_impl(queries)
        with obs.trace("batch", flavor=self.flavor, queries=len(queries)) as span:
            results = self._run_many_impl(queries)
            span.set(matches=sum(result.total_matches for result in results))
            return results

    def _run_many_impl(self, queries: Sequence[QueryLike]) -> List[QueryResult]:
        prepared_batch = [self.prepare(query) for query in queries]
        cached: List[Optional[QueryResult]] = [
            self._cached_result(prepared) for prepared in prepared_batch
        ]
        obs.annotate(result_cache_hits=sum(1 for hit in cached if hit is not None))

        memo: Dict[bytes, List[object]] = {}
        total_keys = 0
        for prepared, hit in zip(prepared_batch, cached):
            if hit is not None:
                continue
            for key in prepared.key_bytes:
                total_keys += 1
                if key not in memo:
                    memo[key] = self.index.lookup(key)

        results: List[QueryResult] = []
        computed: Dict[str, QueryResult] = {}  # joins run once per distinct query
        for prepared, hit in zip(prepared_batch, cached):
            if hit is not None:
                results.append(hit)
                continue
            result = computed.get(prepared.normalized)
            if result is None:
                postings = [memo[key] for key in prepared.key_bytes]
                result = self._execute_prepared(prepared, postings, time.perf_counter())
                self._remember_result(prepared, result)
                computed[prepared.normalized] = result
            results.append(result)
        self._queries += len(prepared_batch)
        self._batches += 1
        self._batch_keys_deduped += total_keys - len(memo)
        return results

    # ------------------------------------------------------------------
    # Introspection and maintenance
    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """Snapshot every counter: service, all three caches, index probes."""
        return ServiceStats(
            queries=self._queries,
            batches=self._batches,
            batch_keys_deduped=self._batch_keys_deduped,
            plans=self._plan_cache.stats() if self._plan_cache else CacheStats(),
            postings=self._postings_cache.stats() if self._postings_cache else CacheStats(),
            results=self._result_cache.stats() if self._result_cache else CacheStats(),
            probes=self.index.probe_stats.snapshot(),
        )

    def clear_caches(self) -> None:
        """Drop all cached plans, postings and results (counters are kept)."""
        for cache in (self._plan_cache, self._postings_cache, self._result_cache):
            if cache is not None:
                cache.clear()
