"""The serving layer: cached, batched, thread-safe query evaluation.

* :mod:`repro.service.cache` -- the LRU primitives: a single-lock
  :class:`LRUCache` and the lock-striped :class:`StripedLRUCache` used for
  both the prepared-query cache and the posting cache.
* :mod:`repro.service.service` -- :class:`QueryService`, which wraps one
  open index (plus its data file) and serves repeated and concurrent
  queries through those caches, including the batch API
  :meth:`QueryService.run_many`.
* :mod:`repro.service.sharded` -- :class:`ShardedQueryService`, the same
  semantics over a :class:`~repro.shard.sharded.ShardedIndex`: one global
  plan/result cache, a posting cache *per shard*, and fan-out execution.
  ``QueryService.open`` dispatches here automatically for manifests.
* :mod:`repro.service.live` -- :class:`LiveQueryService`, serving over a
  mutable :class:`~repro.live.live.LiveIndex` with version-keyed cache
  invalidation (postings/results on every mutation, plans on epoch bumps).
"""

from repro.service.cache import CacheStats, LRUCache, StripedLRUCache
from repro.service.live import LiveQueryService, LiveServiceStats
from repro.service.service import PreparedQuery, QueryService, ServiceStats
from repro.service.sharded import (
    ShardedQueryService,
    ShardedServiceStats,
    ShardLayerStats,
)

__all__ = [
    "QueryService",
    "ShardedQueryService",
    "LiveQueryService",
    "PreparedQuery",
    "ServiceStats",
    "ShardedServiceStats",
    "LiveServiceStats",
    "ShardLayerStats",
    "LRUCache",
    "StripedLRUCache",
    "CacheStats",
]
