"""LRU caches for the serving layer.

Two implementations share one protocol (``get`` / ``put`` / ``invalidate`` /
``clear`` plus hit/miss/eviction counters):

:class:`LRUCache`
    a single ordered map guarded by one lock; recency is updated on every
    hit, eviction removes the least recently used entry.

:class:`StripedLRUCache`
    N independent :class:`LRUCache` stripes selected by key hash, so
    concurrent readers on different stripes never contend on one lock.  This
    is the cache the :class:`~repro.service.service.QueryService` installs in
    front of the B+Tree and in front of query preparation.

Both treat ``None`` as a legitimate cached value (a key known to be absent
from the index), which is why :meth:`get` takes an explicit *default*.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, List


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one cache (or an aggregate of stripes)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0.0 when never probed)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __add__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            size=self.size + other.size,
            capacity=self.capacity + other.capacity,
        )


class LRUCache:
    """A thread-safe least-recently-used map with a bounded entry count."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: object = None) -> object:
        """Return the cached value (refreshing its recency) or *default*."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self._misses += 1
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: object) -> None:
        """Insert or refresh *key*, evicting the LRU entry when full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            if len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            self._entries[key] = value

    def invalidate(self, key: Hashable) -> None:
        """Drop *key* from the cache if present."""
        with self._lock:
            self._entries.pop(key, None)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> List[Hashable]:
        """Current keys from least to most recently used."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> CacheStats:
        """A snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
            )


class StripedLRUCache:
    """An LRU cache sharded into independently locked stripes.

    Keys are distributed by hash; each stripe gets an equal share of the
    total capacity (a capacity smaller than the stripe count reduces the
    stripe count rather than inflating the capacity).  All protocol methods
    simply delegate to the owning stripe, so the cost of thread safety is
    one uncontended lock acquisition in the common case.
    """

    def __init__(self, capacity: int, stripes: int = 8):
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        if stripes < 1:
            raise ValueError("stripe count must be at least 1")
        # Never inflate a small capacity: drop to one stripe per entry
        # rather than padding every stripe up to one entry.  The division
        # remainder is spread over the first stripes so the total is exact.
        stripes = min(stripes, capacity)
        per_stripe, extra = divmod(capacity, stripes)
        self._stripes = [
            LRUCache(per_stripe + (1 if index < extra else 0)) for index in range(stripes)
        ]

    def _stripe_for(self, key: Hashable) -> LRUCache:
        return self._stripes[hash(key) % len(self._stripes)]

    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: object = None) -> object:
        return self._stripe_for(key).get(key, default)

    def put(self, key: Hashable, value: object) -> None:
        self._stripe_for(key).put(key, value)

    def invalidate(self, key: Hashable) -> None:
        self._stripe_for(key).invalidate(key)

    def clear(self) -> None:
        for stripe in self._stripes:
            stripe.clear()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(stripe) for stripe in self._stripes)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._stripe_for(key)

    @property
    def stripe_count(self) -> int:
        """Number of stripes."""
        return len(self._stripes)

    def stats(self) -> CacheStats:
        """Aggregated counters across all stripes."""
        total = CacheStats()
        for stripe in self._stripes:
            total = total + stripe.stats()
        return total
