"""The sharded serving layer: QueryService semantics over a ShardedIndex.

:class:`ShardedQueryService` keeps the parent's cache layering but adapts
each layer to the sharded shape:

prepared-query cache (global)
    decomposition depends only on the query, ``mss`` and coding -- all
    shared by every shard -- so plans are prepared and cached exactly once,
    not per shard.

posting caches (per shard)
    each shard's :class:`~repro.core.index.SubtreeIndex` gets its own
    lock-striped LRU of decoded posting lists.  A key's postings differ per
    shard, so one shared cache keyed by key bytes would collide; per-shard
    caches also keep the fan-out path free of cross-shard contention.  The
    configured ``postings_cache_size`` is the *total* budget, split evenly.

result cache (global)
    merged results are per query, not per shard, and are cached whole.

Execution fans stages 2+3 out to a thread pool via
:func:`repro.exec.fanout.execute_on_shards` and merges in global tid order.
:meth:`run_many` batches like the parent: every distinct cover key is
fetched at most once *per shard* for the whole batch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.exec.executor import QueryResult
from repro.exec.fanout import (
    ShardFetcher,
    execute_on_shards,
    finish_stats,
    make_fanout_pool,
)
from repro.service.cache import CacheStats, StripedLRUCache
from repro.service.service import PreparedQuery, QueryLike, QueryService, ServiceStats
from repro.shard.sharded import ShardedIndex
from repro.storage.bptree import ProbeStats


@dataclass
class ShardLayerStats:
    """One shard's serving counters: posting cache + index probes."""

    shard_id: int
    postings: CacheStats = field(default_factory=CacheStats)
    probes: ProbeStats = field(default_factory=ProbeStats)


@dataclass
class ShardedServiceStats(ServiceStats):
    """Service counters plus the per-shard breakdown.

    The aggregate fields mean what they do on :class:`ServiceStats`;
    ``postings`` and ``probes`` are summed over shards.
    """

    per_shard: List[ShardLayerStats] = field(default_factory=list)

    def extras_dict(self) -> Dict[str, object]:
        """The per-shard split, added under its own key (core shape untouched)."""
        return {
            "shards": [
                {
                    "shard_id": layer.shard_id,
                    "postings_hits": layer.postings.hits,
                    "postings_lookups": layer.postings.lookups,
                    "probe_gets": layer.probes.gets,
                    "tree_descents": layer.probes.tree_descents,
                }
                for layer in self.per_shard
            ],
        }


class ShardedQueryService(QueryService):
    """Cached, batched, thread-safe serving over a sharded index.

    Parameters are those of :class:`QueryService` (minus ``store``, which is
    implied by the shards) plus ``max_threads``, the fan-out pool width
    (default: shard count, capped at 16).
    """

    flavor = "sharded"

    def __init__(
        self,
        index: ShardedIndex,
        strategy: Optional[str] = None,
        pad: bool = True,
        plan_cache_size: int = 256,
        postings_cache_size: int = 4096,
        result_cache_size: int = 1024,
        stripes: int = 8,
        max_threads: Optional[int] = None,
    ):
        # The parent owns the plan/result caches and the prepare() pipeline;
        # its postings layer is disabled (size 0) because posting caching
        # moves into the shards below.
        super().__init__(
            index,
            store=index.store,
            strategy=strategy,
            pad=pad,
            plan_cache_size=plan_cache_size,
            postings_cache_size=0,
            result_cache_size=result_cache_size,
            stripes=stripes,
        )
        self._shard_caches: List[StripedLRUCache] = []
        if postings_cache_size:
            per_shard = max(1, postings_cache_size // index.shard_count)
            for shard in index.shards:
                cache = StripedLRUCache(per_shard, stripes=stripes)
                shard.index.attach_postings_cache(cache)
                self._shard_caches.append(cache)
        self._pool = make_fanout_pool(
            index.shard_count, max_threads, thread_name_prefix="shard-svc"
        )

    # ------------------------------------------------------------------
    @classmethod
    def open(cls, index_path: str, **kwargs: object) -> "ShardedQueryService":
        """Open a sharded index from its manifest file for serving."""
        index = ShardedIndex.open(index_path)
        service = cls(index, **kwargs)  # type: ignore[arg-type]
        service._owned_resources.append(index)
        return service

    def close(self) -> None:
        """Drop every cache (per-shard ones included) and owned resources."""
        for shard, cache in zip(self.index.shards, self._shard_caches):
            cache.clear()
            shard.index.attach_postings_cache(None)
        self._shard_caches.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        super().close()

    # ------------------------------------------------------------------
    # Execution: fan out instead of merged lookups
    # ------------------------------------------------------------------
    def _execute_fanout(
        self,
        prepared: PreparedQuery,
        started: float,
        fetch: Optional[ShardFetcher] = None,
    ) -> QueryResult:
        result, stats = execute_on_shards(
            prepared.query,
            prepared.cover,
            prepared.key_bytes,
            self.index.shards,
            self.index.coding,
            pool=self._pool,
            fetch=fetch,
        )
        result.stats = finish_stats(stats, self.index.coding, self.strategy, started)
        return result

    def _execute_uncached(self, prepared: PreparedQuery, started: float) -> QueryResult:
        """One query: global plan, per-shard fetch+join, merge.

        The parent's :meth:`run` wrapper (caching, counters, tracing) calls
        this for every result-cache miss.
        """
        return self._execute_fanout(prepared, started)

    def _run_many_impl(self, queries: Sequence[QueryLike]) -> List[QueryResult]:
        """Evaluate a batch; each distinct key is fetched once *per shard*.

        The per-shard memos are filled on the fan-out pool (one task per
        shard), then every uncached query joins against them; identical
        queries share one join, exactly as in the parent.
        """
        prepared_batch = [self.prepare(query) for query in queries]
        cached: List[Optional[QueryResult]] = [
            self._cached_result(prepared) for prepared in prepared_batch
        ]
        obs.annotate(result_cache_hits=sum(1 for hit in cached if hit is not None))

        distinct: List[bytes] = []
        seen = set()
        total_keys = 0
        for prepared, hit in zip(prepared_batch, cached):
            if hit is not None:
                continue
            for key in prepared.key_bytes:
                total_keys += 1
                if key not in seen:
                    seen.add(key)
                    distinct.append(key)

        # shard_id -> key -> postings; filled shard-parallel, read-only after.
        memos: Dict[int, Dict[bytes, List[object]]] = {}

        def fill_memo(shard) -> Tuple[int, Dict[bytes, List[object]]]:
            return shard.shard_id, {key: shard.index.lookup(key) for key in distinct}

        shards = self.index.shards
        if self._pool is not None and len(shards) > 1 and distinct:
            memos = dict(self._pool.map(fill_memo, shards))
        else:
            memos = dict(fill_memo(shard) for shard in shards)

        def from_memo(shard, key: bytes) -> List[object]:
            return memos[shard.shard_id][key]

        results: List[QueryResult] = []
        computed: Dict[str, QueryResult] = {}
        for prepared, hit in zip(prepared_batch, cached):
            if hit is not None:
                results.append(hit)
                continue
            result = computed.get(prepared.normalized)
            if result is None:
                result = self._execute_fanout(prepared, time.perf_counter(), fetch=from_memo)
                self._remember_result(prepared, result)
                computed[prepared.normalized] = result
            results.append(result)
        self._queries += len(prepared_batch)
        self._batches += 1
        self._batch_keys_deduped += total_keys - len(distinct)
        return results

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> ShardedServiceStats:
        """Aggregate counters plus the per-shard posting-cache/probe split."""
        per_shard: List[ShardLayerStats] = []
        postings_total = CacheStats()
        probes_total = ProbeStats()
        for position, shard in enumerate(self.index.shards):
            cache_stats = (
                self._shard_caches[position].stats()
                if position < len(self._shard_caches)
                else CacheStats()
            )
            probe_stats = shard.index.probe_stats.snapshot()
            per_shard.append(
                ShardLayerStats(shard.shard_id, postings=cache_stats, probes=probe_stats)
            )
            postings_total = postings_total + cache_stats
            probes_total.gets += probe_stats.gets
            probes_total.cache_hits += probe_stats.cache_hits
            probes_total.tree_descents += probe_stats.tree_descents
        return ShardedServiceStats(
            queries=self._queries,
            batches=self._batches,
            batch_keys_deduped=self._batch_keys_deduped,
            plans=self._plan_cache.stats() if self._plan_cache else CacheStats(),
            postings=postings_total,
            results=self._result_cache.stats() if self._result_cache else CacheStats(),
            probes=probes_total,
            per_shard=per_shard,
        )

    def clear_caches(self) -> None:
        """Drop plans, results and every per-shard posting cache."""
        super().clear_caches()
        for cache in self._shard_caches:
            cache.clear()
