"""The shared CI / low-core guard for timing-sensitive benchmark assertions.

Several benchmarks gate wall-clock *ordering* assertions (speedup bars,
system-vs-system latency ratios) behind the same two conditions:

* shared CI runners (GitHub sets ``CI=true``) are too noisy and throttled
  to gate a hardware-sensitive wall-clock ratio on, and
* boxes with too few cores cannot physically show parallel speedups, and
  any concurrent load lands on the measured core.

Correctness and completeness assertions (match totals, every system
measured on every class) never go through this guard -- they hold on any
machine.  The measured numbers are always recorded in
``benchmarks/results/`` either way.
"""

from __future__ import annotations

import os

#: Default core floor: on a 1-CPU box any concurrent load (the rest of the
#: suite, the host) lands on the measured core.
DEFAULT_MIN_CORES = 2


def timing_bars_enabled(min_cores: int = DEFAULT_MIN_CORES) -> bool:
    """Whether timing-ratio assertions should be enforced on this machine.

    False under CI (``CI`` environment variable set to a non-empty value)
    or when fewer than *min_cores* cores are available.
    """
    if os.environ.get("CI"):
        return False
    return (os.cpu_count() or 1) >= min_cores
