"""Tabular experiment results with a plain-text renderer.

Each experiment returns an :class:`ExperimentResult`: a named table whose
rows mirror the series/rows of the corresponding figure or table in the
paper.  The renderer prints fixed-width text tables so benchmark output can
be diffed and pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence


def _format_value(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.5f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


@dataclass
class ExperimentResult:
    """A named table of experiment measurements."""

    name: str
    description: str
    columns: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    def add_row(self, *values: object) -> None:
        """Append one row; the number of values must match the columns."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values ({self.columns}), got {len(values)}"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        """Attach a free-text note rendered below the table."""
        self.notes.append(note)

    def column(self, name: str) -> List[object]:
        """All values of one column."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def filtered(self, **criteria: object) -> List[List[object]]:
        """Rows whose named columns equal the given values."""
        indexes = {self.columns.index(name): value for name, value in criteria.items()}
        return [
            row
            for row in self.rows
            if all(row[index] == value for index, value in indexes.items())
        ]

    def as_dicts(self) -> List[Dict[str, object]]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """The JSON-serialisable form (the ``result`` block of a bench document)."""
        return {
            "name": self.name,
            "description": self.description,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output (e.g. a reloaded JSON file).

        Round-trip guarantee: ``from_dict(to_dict())`` agrees with the
        original on columns, rows, notes, ``as_dicts()`` and ``to_text()``.
        """
        result = cls(
            name=str(data["name"]),
            description=str(data["description"]),
            columns=list(data["columns"]),  # type: ignore[arg-type]
        )
        for row in data.get("rows", []):  # type: ignore[union-attr]
            result.add_row(*row)
        for note in data.get("notes", []):  # type: ignore[union-attr]
            result.add_note(str(note))
        return result

    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """Render the result as a fixed-width text table."""
        header = [self.columns]
        body = [[_format_value(value) for value in row] for row in self.rows]
        widths = [
            max(len(str(cell)) for cell in column)
            for column in zip(*(header + body))
        ] if self.rows else [len(name) for name in self.columns]

        def render_row(cells: Sequence[str]) -> str:
            return "  ".join(str(cell).rjust(width) for cell, width in zip(cells, widths))

        lines = [f"== {self.name} ==", self.description, ""]
        lines.append(render_row(self.columns))
        lines.append(render_row(["-" * width for width in widths]))
        lines.extend(render_row(row) for row in body)
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console convenience
        """Print the rendered table."""
        print(self.to_text())


def geometric_spread(values: Iterable[float]) -> float:
    """max/min ratio of positive values (used for 'order of magnitude' checks)."""
    materialised = [value for value in values if value > 0]
    if not materialised:
        return 0.0
    return max(materialised) / min(materialised)
