"""The experiment runner: build, measure, report.

One :class:`ExperimentRunner` owns a shared
:class:`~repro.bench.context.ExperimentContext` (so corpora and indexes are
built once across experiments), resolves registered configs, wraps every
measurement with warmup + environment capture, and emits two artefacts per
run into the output directory:

* ``<name>.txt`` -- the fixed-width table for humans / EXPERIMENTS.md;
* ``BENCH_<name>.json`` -- the schema-validated machine-readable document
  the regression gate diffs across commits.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import subprocess
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro import obs
from repro.bench.config import ExperimentConfig
from repro.bench.context import ExperimentContext
from repro.bench.registry import get_config, run_config
from repro.bench.results import ExperimentResult
from repro.bench.schema import DOCUMENT_KIND, SCHEMA_VERSION, require_valid

#: Environment variable holding the default corpus-scale multiplier.
SCALE_ENV_VAR = "REPRO_BENCH_SCALE"


def json_filename(name: str) -> str:
    """The machine-readable artefact name of experiment *name*."""
    return f"BENCH_{name}.json"


def trace_filename(name: str) -> str:
    """The per-stage trace artefact name of experiment *name*."""
    return f"TRACE_{name}.json"


def capture_environment() -> Dict[str, object]:
    """The environment block stamped into every bench document."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "ci": bool(os.environ.get("CI")),
        "git_sha": _git_sha(),
        "generated_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
    }


def build_document(
    config: ExperimentConfig,
    result: ExperimentResult,
    wall_seconds: float,
    scale: float = 1.0,
    warmup_runs: int = 0,
    measured_runs: int = 1,
) -> Dict[str, object]:
    """Assemble and validate the bench document for one measured result.

    This is the single place the document shape is defined; both
    :meth:`ExperimentRunner.run` and ``repro loadtest`` (which measures
    against a user-supplied index, outside any runner context) build their
    artefacts through it, so everything downstream of the schema -- the
    validator, the regression gate, the committed baselines -- sees one
    format.
    """
    document: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "kind": DOCUMENT_KIND,
        "experiment": config.name,
        "config": config.as_dict(scale=scale),
        "environment": capture_environment(),
        "measurement": {
            "wall_seconds": wall_seconds,
            "warmup_runs": warmup_runs,
            "measured_runs": measured_runs,
        },
        "result": result.to_dict(),
    }
    require_valid(json.loads(json.dumps(document)))
    return document


def write_artifacts(
    out_dir: str,
    config: ExperimentConfig,
    result: ExperimentResult,
    document: Dict[str, object],
) -> Tuple[str, str]:
    """Write the ``<name>.txt`` and ``BENCH_<name>.json`` artefact pair."""
    os.makedirs(out_dir, exist_ok=True)
    text_path = os.path.join(out_dir, f"{config.name}.txt")
    with open(text_path, "w", encoding="utf-8") as handle:
        handle.write(result.to_text() + "\n")
    json_path = os.path.join(out_dir, json_filename(config.name))
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return text_path, json_path


def _git_sha() -> Optional[str]:
    """The current commit SHA, or None outside a git checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and sha else None


@dataclass
class RunReport:
    """Everything one experiment run produced."""

    config: ExperimentConfig
    #: The parameters actually passed to the runner (post-scaling).
    params: Dict[str, object]
    result: ExperimentResult
    document: Dict[str, object]
    wall_seconds: float
    #: Artefact paths (None when the runner writes no files).
    json_path: Optional[str] = None
    text_path: Optional[str] = None
    #: ``TRACE_<name>.json`` path (None unless the runner traces).
    trace_path: Optional[str] = None


class ExperimentRunner:
    """Runs registered experiments and reports text + JSON artefacts."""

    def __init__(
        self,
        workdir: Optional[str] = None,
        out_dir: Optional[str] = None,
        seed: int = 17,
        scale: Optional[float] = None,
        trace: bool = False,
    ) -> None:
        self._owns_workdir = workdir is None
        if workdir is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="repro-bench-")
            workdir = self._tempdir.name
        else:
            self._tempdir = None
        self.workdir = workdir
        self.out_dir = out_dir
        self.seed = seed
        if scale is None:
            scale = float(os.environ.get(SCALE_ENV_VAR, "1.0"))
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.scale = scale
        self.trace = trace
        self.context = ExperimentContext(workdir=workdir, seed=seed)

    # ------------------------------------------------------------------
    def resolve(self, experiment: Union[str, ExperimentConfig]) -> ExperimentConfig:
        """Look up a name in the registry, or pass a config through."""
        if isinstance(experiment, ExperimentConfig):
            return experiment
        return get_config(experiment)

    def run(
        self,
        experiment: Union[str, ExperimentConfig],
        overrides: Optional[Dict[str, object]] = None,
        write: bool = True,
    ) -> RunReport:
        """Run one experiment: warmup, measure, validate, emit artefacts.

        *overrides* replace individual runner parameters after scaling (the
        benchmark wrappers use this for one-off knobs); ``write=False``
        skips the artefact files but still builds and validates the JSON
        document.
        """
        config = self.resolve(experiment).scaled(self.scale)
        if overrides:
            config = config.with_params(**overrides)
        params = dict(config.params)

        for _ in range(config.warmup):
            run_config(config, self.context)
        # Warmups run untraced: the trace artefact describes the measured
        # run only.  An externally enabled tracer is left alone (and its
        # ring is not dumped -- it is not ours).
        tracer: Optional[obs.Tracer] = None
        if self.trace and not obs.enabled():
            tracer = obs.enable(obs.Tracer(capacity=4096))
        started = time.perf_counter()
        try:
            result = run_config(config, self.context)
        finally:
            if tracer is not None:
                obs.disable()
        wall_seconds = time.perf_counter() - started

        document = build_document(
            config, result, wall_seconds, scale=self.scale, warmup_runs=config.warmup
        )

        report = RunReport(
            config=config,
            params=params,
            result=result,
            document=document,
            wall_seconds=wall_seconds,
        )
        if write and self.out_dir is not None:
            report.text_path, report.json_path = write_artifacts(
                self.out_dir, config, result, document
            )
            if tracer is not None:
                from repro.obs.sinks import write_chrome_trace

                records = tracer.last(len(tracer.recent))
                report.trace_path = os.path.join(
                    self.out_dir, trace_filename(config.name)
                )
                write_chrome_trace(
                    report.trace_path,
                    records,
                    metadata={
                        "reproExperiment": config.name,
                        "reproTraceCount": len(records),
                        "reproStageTotals": obs.stage_totals(records),
                    },
                )
        return report

    def run_many(
        self,
        experiments: List[Union[str, ExperimentConfig]],
        write: bool = True,
    ) -> List[RunReport]:
        """Run several experiments over the shared context, in order."""
        return [self.run(experiment, write=write) for experiment in experiments]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close every cached index and drop an owned temp workdir."""
        self.context.close()
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
