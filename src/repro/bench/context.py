"""The experiment laboratory: cached corpora, data files and indexes.

Most experiments need the same ingredients -- a generated corpus of N
sentences, its on-disk data file and one or more subtree indexes over it.
Building them repeatedly would dominate benchmark time, so the context caches
every artefact inside a working directory, keyed by its parameters.  All
artefacts are deterministic functions of ``(seed, size)`` so cached and fresh
runs measure the same thing.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.baselines.atreegrep import ATreeGrepIndex
from repro.baselines.frequency_based import FrequencyBasedIndex
from repro.baselines.node_index import NodeIntervalIndex
from repro.core.index import SubtreeIndex
from repro.corpus.generator import CorpusGenerator
from repro.corpus.store import Corpus, TreeStore
from repro.exec.executor import QueryExecutor
from repro.shard.sharded import ShardedIndex
from repro.workloads.fb import FBQuerySet, generate_fb_queries
from repro.workloads.wh import WHQuery, generate_wh_queries


@dataclass
class ExperimentContext:
    """Builds and caches the artefacts shared by the experiment runners."""

    workdir: str
    seed: int = 17
    _corpora: Dict[int, Corpus] = field(default_factory=dict)
    _indexes: Dict[Tuple[int, str, int], SubtreeIndex] = field(default_factory=dict)
    _sharded: Dict[Tuple[int, str, int, int, int, str], ShardedIndex] = field(default_factory=dict)
    _node_indexes: Dict[int, NodeIntervalIndex] = field(default_factory=dict)
    _fb_sets: Dict[Tuple[int, int], FBQuerySet] = field(default_factory=dict)
    _stores: Dict[int, TreeStore] = field(default_factory=dict)

    def __post_init__(self) -> None:
        os.makedirs(self.workdir, exist_ok=True)

    # ------------------------------------------------------------------
    # Corpora and workloads
    # ------------------------------------------------------------------
    def corpus(self, sentence_count: int) -> Corpus:
        """The deterministic corpus of *sentence_count* sentences."""
        if sentence_count not in self._corpora:
            generator = CorpusGenerator(seed=self.seed)
            self._corpora[sentence_count] = Corpus(generator.generate(sentence_count))
        return self._corpora[sentence_count]

    def held_out_trees(self, count: int = 50) -> List:
        """Trees generated from a different seed, never part of any index."""
        return CorpusGenerator(seed=self.seed + 7919).generate_list(count)

    def wh_queries(self) -> List[WHQuery]:
        """The 48 WH queries."""
        return generate_wh_queries()

    def fb_queries(self, corpus_size: int, max_size: int = 10) -> FBQuerySet:
        """The FB query set relative to the corpus of *corpus_size* sentences."""
        key = (corpus_size, max_size)
        if key not in self._fb_sets:
            self._fb_sets[key] = generate_fb_queries(
                indexed_trees=list(self.corpus(corpus_size)),
                held_out_trees=self.held_out_trees(),
                max_size=max_size,
                seed=self.seed,
            )
        return self._fb_sets[key]

    # ------------------------------------------------------------------
    # Indexes and executors
    # ------------------------------------------------------------------
    def index_path(self, sentence_count: int, coding: str, mss: int) -> str:
        """Deterministic file path of one index configuration."""
        return os.path.join(self.workdir, f"si-{sentence_count}-{coding}-{mss}.bpt")

    def subtree_index(self, sentence_count: int, coding: str, mss: int) -> SubtreeIndex:
        """Build (or reuse) the subtree index for the given configuration."""
        key = (sentence_count, coding, mss)
        if key not in self._indexes:
            path = self.index_path(sentence_count, coding, mss)
            if os.path.exists(path):
                os.remove(path)
            corpus = self.corpus(sentence_count)
            self._indexes[key] = SubtreeIndex.build(corpus, mss=mss, coding=coding, path=path)
        return self._indexes[key]

    def sharded_index(
        self,
        sentence_count: int,
        coding: str,
        mss: int,
        shards: int,
        workers: int = 1,
        partitioner: str = "hash",
    ) -> ShardedIndex:
        """Build (or reuse) a sharded index for the given configuration.

        Always built fresh on first use, so ``manifest.build_wall_seconds``
        of the returned index is a valid build-time measurement for that
        (shards, workers) configuration.
        """
        key = (sentence_count, coding, mss, shards, workers, partitioner)
        if key not in self._sharded:
            path = os.path.join(
                self.workdir,
                f"shard-{sentence_count}-{coding}-{mss}-n{shards}-w{workers}-{partitioner}.si",
            )
            self._sharded[key] = ShardedIndex.build(
                self.corpus(sentence_count),
                mss=mss,
                coding=coding,
                path=path,
                shards=shards,
                workers=workers,
                partitioner=partitioner,
            )
        return self._sharded[key]

    def executor(self, sentence_count: int, coding: str, mss: int) -> QueryExecutor:
        """An executor over the cached index.

        The filtering phase (filter-based coding) reads candidate trees from
        the on-disk data file, as in the paper's setup, rather than from the
        in-memory corpus.
        """
        index = self.subtree_index(sentence_count, coding, mss)
        return QueryExecutor(index, store=self.tree_store(sentence_count))

    def node_index(self, sentence_count: int) -> NodeIntervalIndex:
        """The LPath-style node index over the corpus."""
        if sentence_count not in self._node_indexes:
            path = os.path.join(self.workdir, f"node-{sentence_count}.bpt")
            if os.path.exists(path):
                os.remove(path)
            self._node_indexes[sentence_count] = NodeIntervalIndex.build(
                self.corpus(sentence_count), path
            )
        return self._node_indexes[sentence_count]

    def atreegrep(self, sentence_count: int) -> ATreeGrepIndex:
        """An ATreeGrep-style index; candidate validation reads the data file."""
        corpus = self.corpus(sentence_count)
        return ATreeGrepIndex.build(corpus, store=self.tree_store(sentence_count))

    def frequency_based(self, sentence_count: int, cutoff: float, mss: int = 3) -> FrequencyBasedIndex:
        """A frequency-based (TreePi-style) index; validation reads the data file."""
        corpus = self.corpus(sentence_count)
        return FrequencyBasedIndex.build(
            corpus, store=self.tree_store(sentence_count), mss=mss, frequency_cutoff=cutoff
        )

    def tree_store(self, sentence_count: int) -> TreeStore:
        """The on-disk data file of the corpus (built on first use, then cached)."""
        if sentence_count not in self._stores:
            path = os.path.join(self.workdir, f"data-{sentence_count}.bin")
            if os.path.exists(path):
                self._stores[sentence_count] = TreeStore(path)
            else:
                self._stores[sentence_count] = TreeStore.build(path, self.corpus(sentence_count))
        return self._stores[sentence_count]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close every cached index."""
        for index in self._indexes.values():
            index.close()
        for sharded in self._sharded.values():
            sharded.close()
        for index in self._node_indexes.values():
            index.close()
        for store in self._stores.values():
            store.close()
        self._indexes.clear()
        self._sharded.clear()
        self._node_indexes.clear()
        self._stores.clear()

    def __enter__(self) -> "ExperimentContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
