"""The central experiment registry.

Every benchmark the repo knows how to run is registered here as an
:class:`~repro.bench.config.ExperimentConfig` naming a runner function from
:mod:`repro.bench.experiments`.  The ``benchmarks/test_*`` files, the
``repro bench`` CLI and the regression gate all resolve experiments through
this registry, so corpus sizes, row identities and gated metrics live in
exactly one place.

Default parameters are the laptop-scale sizes the committed numbers in
``benchmarks/results/`` were measured at; pass a scale factor (or set
``REPRO_BENCH_SCALE``) to shrink or grow every corpus proportionally.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.bench import experiments as _experiments
from repro.bench.config import ExperimentConfig
from repro.bench.context import ExperimentContext
from repro.bench.results import ExperimentResult

#: Runner-function registry: config.runner -> callable(context, **params).
RUNNERS: Dict[str, Callable[..., ExperimentResult]] = {
    "figure2_index_keys": _experiments.figure2_index_keys,
    "figure3_branching": _experiments.figure3_branching,
    "figure8_index_size": _experiments.figure8_index_size,
    "table1_from_context": _experiments.table1_from_context,
    "figure9_posting_counts": _experiments.figure9_posting_counts,
    "figure10_build_time": _experiments.figure10_build_time,
    "figure11_runtime_by_matches": _experiments.figure11_runtime_by_matches,
    "figure12_runtime_by_query_size": _experiments.figure12_runtime_by_query_size,
    "figure13_scalability": _experiments.figure13_scalability,
    "table2_system_comparison": _experiments.table2_system_comparison,
    "table3_join_counts": lambda context, **params: _experiments.table3_join_counts(**params),
    "serve_cold_warm": _experiments.serve_cold_warm,
    "serve_http_throughput": _experiments.serve_http_throughput,
    "serve_overload": _experiments.serve_overload,
    "serve_mixed_rw": _experiments.serve_mixed_rw,
    "shard_scalability": _experiments.shard_scalability,
    "update_throughput": _experiments.update_throughput,
    "ablation_cover_selection": _experiments.ablation_cover_selection,
    "ablation_storage": _experiments.ablation_storage,
}

_REGISTRY: Dict[str, ExperimentConfig] = {}


class UnknownExperimentError(KeyError):
    """No experiment with the requested name is registered."""


def register(config: ExperimentConfig, replace: bool = False) -> ExperimentConfig:
    """Add *config* to the registry (``replace=True`` to overwrite)."""
    if config.runner not in RUNNERS:
        raise ValueError(f"config {config.name!r} names unknown runner {config.runner!r}")
    if config.name in _REGISTRY and not replace:
        raise ValueError(f"experiment {config.name!r} is already registered")
    _REGISTRY[config.name] = config
    return config


def get_config(name: str) -> ExperimentConfig:
    """The registered config named *name*."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownExperimentError(f"unknown experiment {name!r} (known: {known})") from None


def experiment_names() -> List[str]:
    """All registered experiment names, in registration order."""
    return list(_REGISTRY)


def all_configs() -> List[ExperimentConfig]:
    """All registered configs, in registration order."""
    return list(_REGISTRY.values())


def run_config(config: ExperimentConfig, context: ExperimentContext) -> ExperimentResult:
    """Invoke the config's runner on *context* (no reporting; see runner.py)."""
    return RUNNERS[config.runner](context, **dict(config.params))


# ----------------------------------------------------------------------
# The built-in experiments (one per benchmarks/test_* file).
# ----------------------------------------------------------------------
register(ExperimentConfig(
    name="figure2_index_keys",
    title="Figure 2",
    description="Number of index keys (unique subtrees) as a function of the input size",
    runner="figure2_index_keys",
    params={"sentence_counts": (1, 10, 100, 1_000)},
    key_columns=("sentences", "mss"),
    metrics={"unique_subtrees": "exact"},
))

register(ExperimentConfig(
    name="figure3_branching",
    title="Figure 3",
    description="Average number of subtrees per node by root branching factor",
    runner="figure3_branching",
    params={"sentence_count": 1_000},
    key_columns=("branching_factor", "subtree_size"),
    metrics={"avg_subtrees": "exact"},
))

register(ExperimentConfig(
    name="figure8_index_size",
    title="Figure 8",
    description="Subtree index size (bytes) for the three codings",
    runner="figure8_index_size",
    params={"sentence_counts": (100, 400, 1_200)},
    key_columns=("sentences", "coding", "mss"),
    metrics={"size_bytes": "lower", "build_seconds": "lower"},
    timing_columns=("build_seconds",),
))

register(ExperimentConfig(
    name="table1_size_ratio",
    title="Table 1",
    description="Ratio of the subtree index size at mss=5 to the size at mss=1",
    runner="table1_from_context",
    params={"sentence_counts": (100, 400, 1_200)},
    key_columns=("sentences", "coding"),
    metrics={"ratio": "lower"},
))

register(ExperimentConfig(
    name="figure9_postings",
    title="Figure 9",
    description="Total number of postings for the three codings",
    runner="figure9_posting_counts",
    params={"sentence_counts": (100, 400, 1_200)},
    key_columns=("sentences", "coding", "mss"),
    metrics={"postings": "exact"},
))

register(ExperimentConfig(
    name="figure10_build_time",
    title="Figure 10",
    description="Index construction time (seconds) for the three codings",
    runner="figure10_build_time",
    params={"sentence_counts": (100, 400, 1_200)},
    key_columns=("sentences", "coding", "mss"),
    metrics={"build_seconds": "lower"},
    timing_columns=("build_seconds",),
))

register(ExperimentConfig(
    name="figure11_runtime_by_matches",
    title="Figure 11",
    description="Average runtime of queries in terms of the number of matches",
    runner="figure11_runtime_by_matches",
    params={"sentence_count": 1_200, "mss_values": (1, 2, 3)},
    key_columns=("coding", "mss", "match_bin"),
    metrics={"avg_seconds": "lower", "queries": "exact"},
    timing_columns=("avg_seconds",),
))

register(ExperimentConfig(
    name="figure12_runtime_by_size",
    title="Figure 12",
    description="Average runtime of queries in terms of the size of queries",
    runner="figure12_runtime_by_query_size",
    params={"sentence_count": 1_200, "mss_values": (1, 2, 3), "min_matches": 10},
    key_columns=("coding", "mss", "query_size"),
    metrics={"avg_seconds": "lower", "queries": "exact"},
    timing_columns=("avg_seconds",),
))

register(ExperimentConfig(
    name="figure13_scalability",
    title="Figure 13",
    description="Average runtime of queries (mss=3) over growing corpus sizes",
    runner="figure13_scalability",
    params={"sentence_counts": (300, 600, 1_200, 2_400)},
    key_columns=("sentences", "coding"),
    metrics={"avg_seconds": "lower"},
    timing_columns=("avg_seconds",),
))

register(ExperimentConfig(
    name="table2_system_comparison",
    title="Table 2",
    description="FB query classes: subtree index (root-split) vs ATreeGrep and frequency-based",
    runner="table2_system_comparison",
    params={"sentence_count": 2_400},
    key_columns=("class", "system"),
    metrics={"avg_seconds": "lower"},
    timing_columns=("avg_seconds",),
))

register(ExperimentConfig(
    name="table3_join_counts",
    title="Table 3",
    description="Average number of joins per WH query group: minRC vs optimalCover",
    runner="table3_join_counts",
    params={"mss_values": (2, 3, 4, 5)},
    key_columns=("group", "mss"),
    metrics={"joins_root_split": "exact", "joins_subtree_interval": "exact"},
))

register(ExperimentConfig(
    name="serve_cold_warm",
    title="Serve",
    description="Cold vs warm-cache vs hot-cache latency through QueryService",
    runner="serve_cold_warm",
    params={"sentence_count": 1_200, "mss": 3},
    key_columns=("coding",),
    metrics={"cold_ms_per_query": "lower", "warm_ms_per_query": "lower"},
    timing_columns=(
        "cold_ms_per_query",
        "warm_ms_per_query",
        "hot_ms_per_query",
        "warm_speedup",
        "hot_speedup",
    ),
))

register(ExperimentConfig(
    name="serve_http_throughput",
    title="Serve HTTP throughput",
    description="Closed-loop throughput vs latency of the asyncio HTTP query server",
    runner="serve_http_throughput",
    params={"sentence_count": 600, "concurrency_levels": (1, 2, 4), "duration_seconds": 1.0},
    key_columns=("concurrency",),
    metrics={"errors": "exact", "mismatches": "exact"},
    timing_columns=(
        "duration_seconds",
        "requests",
        "qps",
        "qps_traced",
        "trace_overhead_pct",
        "p50_ms",
        "p95_ms",
        "p99_ms",
    ),
))

register(ExperimentConfig(
    name="serve_overload",
    title="Serve overload",
    description="Open-loop overload: load shedding, bounded latency, zero wrong answers",
    runner="serve_overload",
    params={
        "sentence_count": 600,
        "duration_seconds": 1.5,
        "calibration_seconds": 0.75,
        "max_queue": 16,
        "max_workers": 2,
        "profile": "fb_heavy",
    },
    key_columns=("load",),
    metrics={"errors": "exact", "mismatches": "exact"},
    timing_columns=(
        "rate_qps",
        "offered",
        "accepted",
        "shed",
        "overflowed",
        "duration_seconds",
        "p50_ms",
        "p99_ms",
    ),
))

register(ExperimentConfig(
    name="serve_mixed_rw",
    title="Serve mixed read/write",
    description="Queries against a live index under concurrent adds/deletes, then settled verification",
    runner="serve_mixed_rw",
    params={
        "sentence_count": 400,
        "duration_seconds": 1.5,
        "verify_seconds": 0.75,
        "concurrency": 2,
    },
    key_columns=("phase",),
    metrics={"errors": "exact", "mismatches": "exact"},
    timing_columns=(
        "duration_seconds",
        "requests",
        "qps",
        "adds",
        "deletes",
        "writes_per_sec",
        "p50_ms",
        "p99_ms",
    ),
))

register(ExperimentConfig(
    name="shard_scalability",
    title="Shard scalability",
    description="Parallel build time and fan-out query latency of the sharded index",
    runner="shard_scalability",
    params={"sentence_count": 1_200, "shard_counts": (1, 2, 4, 8)},
    key_columns=("shards",),
    metrics={
        "total_matches": "exact",
        "cold_ms_per_query": "lower",
        "warm_ms_per_query": "lower",
    },
    timing_columns=(
        "build_seconds",
        "build_speedup",
        "cold_ms_per_query",
        "warm_ms_per_query",
    ),
))

register(ExperimentConfig(
    name="update_throughput",
    title="Update throughput",
    description="Live-index mutation cost: adds/sec, delta-fraction latency, compaction",
    runner="update_throughput",
    params={"sentence_count": 600, "delta_fractions": (0.0, 0.10, 0.50)},
    key_columns=("delta_fraction",),
    metrics={"total_matches": "exact", "total_matches_compacted": "exact"},
    timing_columns=(
        "adds_per_sec",
        "query_ms_delta",
        "compact_seconds",
        "query_ms_compacted",
    ),
))

register(ExperimentConfig(
    name="ablation_cover_selection",
    title="Ablation: cover construction",
    description="Query runtime of the root-split index under different decomposition policies",
    runner="ablation_cover_selection",
    params={"sentence_count": 1_200, "mss": 3},
    key_columns=("policy",),
    metrics={"total_matches": "exact", "avg_seconds": "lower"},
    timing_columns=("avg_seconds",),
))

register(ExperimentConfig(
    name="ablation_storage",
    title="Ablation: B+Tree loading strategy",
    description="Building the index B+Tree by sorted bulk load vs one insert per key",
    runner="ablation_storage",
    params={"sentence_count": 300, "mss": 3},
    key_columns=("strategy",),
    metrics={"file_bytes": "lower", "height": "exact"},
    timing_columns=("seconds",),
))
