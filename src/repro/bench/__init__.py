"""Experiment harness regenerating the paper's tables and figures.

* :mod:`repro.bench.results` -- the generic tabular result container with a
  plain-text renderer and a JSON round-trip shared by all experiments.
* :mod:`repro.bench.context` -- a small laboratory object that builds and
  caches corpora, data files and indexes inside a working directory so the
  individual experiments do not repeat expensive setup.
* :mod:`repro.bench.experiments` -- one runner function per table/figure of
  the paper's Section 6 (Figures 2, 3, 8--13 and Tables 1--3) plus the
  serving/sharding/live-index experiments, each returning an
  :class:`~repro.bench.results.ExperimentResult`.
* :mod:`repro.bench.config` / :mod:`repro.bench.registry` -- declarative
  experiment configs (corpus sizes, seed, gated metrics) and the central
  registry every benchmark resolves through.
* :mod:`repro.bench.runner` -- the :class:`ExperimentRunner` owning
  build/measure/report: warmup, environment capture, text tables and
  schema-validated ``BENCH_<experiment>.json`` documents.
* :mod:`repro.bench.gate` -- the regression gate diffing two runs'
  ``BENCH_*.json`` with tolerance bands (``repro bench --gate``).
* :mod:`repro.bench.schema` -- the versioned document schema and the
  stdlib validator.

See ``docs/benchmarks.md`` for the config format, the JSON schema and how
to read a perf trajectory across commits.
"""

from repro.bench.config import ExperimentConfig
from repro.bench.context import ExperimentContext
from repro.bench.experiments import (
    ablation_cover_selection,
    ablation_storage,
    figure2_index_keys,
    figure3_branching,
    figure8_index_size,
    figure9_posting_counts,
    figure10_build_time,
    figure11_runtime_by_matches,
    figure12_runtime_by_query_size,
    figure13_scalability,
    serve_cold_warm,
    shard_scalability,
    table1_size_ratio,
    table2_system_comparison,
    table3_join_counts,
    update_throughput,
)
from repro.bench.gate import GateOptions, GateReport, compare, compare_directories
from repro.bench.guard import timing_bars_enabled
from repro.bench.registry import all_configs, experiment_names, get_config, register
from repro.bench.results import ExperimentResult
from repro.bench.runner import ExperimentRunner, RunReport
from repro.bench.schema import SCHEMA_VERSION, SchemaError, require_valid, validate_document

__all__ = [
    "ExperimentConfig",
    "ExperimentContext",
    "ExperimentResult",
    "ExperimentRunner",
    "RunReport",
    "GateOptions",
    "GateReport",
    "compare",
    "compare_directories",
    "SCHEMA_VERSION",
    "SchemaError",
    "require_valid",
    "validate_document",
    "register",
    "get_config",
    "all_configs",
    "experiment_names",
    "timing_bars_enabled",
    "figure2_index_keys",
    "figure3_branching",
    "figure8_index_size",
    "table1_size_ratio",
    "figure9_posting_counts",
    "figure10_build_time",
    "figure11_runtime_by_matches",
    "figure12_runtime_by_query_size",
    "table2_system_comparison",
    "figure13_scalability",
    "table3_join_counts",
    "serve_cold_warm",
    "shard_scalability",
    "update_throughput",
    "ablation_cover_selection",
    "ablation_storage",
]
