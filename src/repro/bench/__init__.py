"""Experiment harness regenerating the paper's tables and figures.

* :mod:`repro.bench.results` -- the generic tabular result container with a
  plain-text renderer shared by all experiments.
* :mod:`repro.bench.context` -- a small laboratory object that builds and
  caches corpora, data files and indexes inside a working directory so the
  individual experiments do not repeat expensive setup.
* :mod:`repro.bench.experiments` -- one runner per table/figure of the
  paper's Section 6 (Figures 2, 3, 8--13 and Tables 1--3), each returning an
  :class:`~repro.bench.results.ExperimentResult`.

Every runner accepts explicit scale parameters; the defaults are sized for a
laptop-scale reproduction (the paper's largest runs use up to one million
sentences -- see EXPERIMENTS.md for the scaling notes).
"""

from repro.bench.context import ExperimentContext
from repro.bench.experiments import (
    figure2_index_keys,
    figure3_branching,
    figure8_index_size,
    figure9_posting_counts,
    figure10_build_time,
    figure11_runtime_by_matches,
    figure12_runtime_by_query_size,
    figure13_scalability,
    serve_cold_warm,
    table1_size_ratio,
    table2_system_comparison,
    table3_join_counts,
)
from repro.bench.results import ExperimentResult

__all__ = [
    "ExperimentContext",
    "ExperimentResult",
    "figure2_index_keys",
    "figure3_branching",
    "figure8_index_size",
    "table1_size_ratio",
    "figure9_posting_counts",
    "figure10_build_time",
    "figure11_runtime_by_matches",
    "figure12_runtime_by_query_size",
    "table2_system_comparison",
    "figure13_scalability",
    "table3_join_counts",
    "serve_cold_warm",
]
