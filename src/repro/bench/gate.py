"""The regression gate: diff two bench-JSON runs and classify every metric.

``compare(baseline, current)`` takes two documents of the same experiment
and classifies each gated metric (declared in the config's ``metrics``
block) as **improved**, **neutral** or **regressed**:

* ``exact`` metrics (correctness invariants such as match totals) must be
  identical row for row -- any difference is a regression;
* ``lower`` / ``higher`` metrics are compared by the geometric mean of the
  per-row current/baseline ratios (oriented so > 1 is always worse), with a
  configurable tolerance band.  Aggregating across rows keeps one noisy
  tiny measurement from flipping the verdict.

A wider tolerance is applied automatically when either run was produced
under CI (shared runners are too noisy for tight wall-clock bands); the
``CI`` environment variable at gate time triggers the same guard.

``compare_directories`` lifts this to two result directories full of
``BENCH_*.json`` files and is what ``repro bench --gate`` calls; the gate
exits non-zero when any experiment regressed.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.schema import SCHEMA_VERSION, validate_document

#: Verdict statuses, from best to worst.
STATUS_IMPROVED = "improved"
STATUS_NEUTRAL = "neutral"
STATUS_NEW = "new"
STATUS_REGRESSED = "regressed"
STATUS_MISSING = "missing"

#: Statuses that fail the gate.
FAILING_STATUSES = (STATUS_REGRESSED, STATUS_MISSING)


class GateError(ValueError):
    """The gate cannot run at all (unreadable directory, invalid documents)."""


@dataclass(frozen=True)
class GateOptions:
    """Tolerance bands of the gate.

    *tolerance* is the relative band around a ratio of 1.0: a metric is
    regressed when its (worse-is-bigger) ratio exceeds ``1 + tolerance``
    and improved when it drops below ``1 / (1 + tolerance)`` -- symmetric
    in log space.  *ci_tolerance* replaces it when either compared run (or
    the gate process itself) is under CI.
    """

    tolerance: float = 0.35
    ci_tolerance: float = 0.60

    def __post_init__(self) -> None:
        if self.tolerance < 0 or self.ci_tolerance < 0:
            raise ValueError("tolerances must be non-negative")

    def effective_tolerance(self, ci: bool) -> float:
        return self.ci_tolerance if ci else self.tolerance


@dataclass
class MetricVerdict:
    """The classification of one gated metric of one experiment."""

    experiment: str
    metric: str
    direction: str
    status: str = STATUS_NEUTRAL
    #: Geometric-mean current/baseline ratio oriented so > 1 is worse
    #: (None for exact metrics and structural statuses).
    ratio: Optional[float] = None
    rows_compared: int = 0
    detail: str = ""


@dataclass
class ExperimentComparison:
    """All verdicts plus structural problems of one experiment's diff."""

    experiment: str
    verdicts: List[MetricVerdict] = field(default_factory=list)
    #: Structural issues that fail the gate regardless of metric verdicts
    #: (missing rows, incomparable documents).
    problems: List[str] = field(default_factory=list)

    @property
    def failures(self) -> List[str]:
        failures = [
            f"{verdict.metric}: {verdict.status}"
            + (f" (ratio {verdict.ratio:.2f})" if verdict.ratio is not None else "")
            + (f" -- {verdict.detail}" if verdict.detail else "")
            for verdict in self.verdicts
            if verdict.status in FAILING_STATUSES
        ]
        return failures + list(self.problems)

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass
class GateReport:
    """The outcome of gating one result directory against a baseline."""

    comparisons: List[ExperimentComparison] = field(default_factory=list)
    #: Experiments present only in the current run (allowed; informational).
    new_experiments: List[str] = field(default_factory=list)
    #: Experiments present only in the baseline (a regression: results lost).
    missing_experiments: List[str] = field(default_factory=list)
    tolerance: float = 0.0
    ci_guard: bool = False

    @property
    def ok(self) -> bool:
        return not self.missing_experiments and all(c.ok for c in self.comparisons)

    def to_text(self) -> str:
        lines = [
            f"regression gate: tolerance ±{self.tolerance:.0%}"
            + (" (CI noise guard active)" if self.ci_guard else "")
        ]
        for comparison in self.comparisons:
            lines.append(f"  {comparison.experiment}:")
            for verdict in comparison.verdicts:
                ratio = f" ratio={verdict.ratio:.3f}" if verdict.ratio is not None else ""
                detail = f" ({verdict.detail})" if verdict.detail else ""
                lines.append(
                    f"    {verdict.metric:<24s} {verdict.status:<10s}"
                    f"{ratio}{detail} [{verdict.direction}, {verdict.rows_compared} rows]"
                )
            for problem in comparison.problems:
                lines.append(f"    problem: {problem}")
        for name in self.new_experiments:
            lines.append(f"  {name}: new experiment (no baseline; not gated)")
        for name in self.missing_experiments:
            lines.append(f"  {name}: MISSING from the current run (present in baseline)")
        lines.append("gate: " + ("OK" if self.ok else "REGRESSED"))
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Document-level comparison
# ----------------------------------------------------------------------
def _rows_by_key(
    document: dict, key_columns: Sequence[str]
) -> Dict[Tuple[object, ...], List[dict]]:
    result = document["result"]
    columns = result["columns"]
    grouped: Dict[Tuple[object, ...], List[dict]] = {}
    for row in result["rows"]:
        cells = dict(zip(columns, row))
        key = tuple(cells.get(column) for column in key_columns)
        grouped.setdefault(key, []).append(cells)
    return grouped


def _is_ci(baseline: dict, current: dict) -> bool:
    return bool(
        os.environ.get("CI")
        or baseline.get("environment", {}).get("ci")
        or current.get("environment", {}).get("ci")
    )


def _classify_ratio(ratio: float, tolerance: float) -> str:
    if ratio > 1.0 + tolerance:
        return STATUS_REGRESSED
    if ratio < 1.0 / (1.0 + tolerance):
        return STATUS_IMPROVED
    return STATUS_NEUTRAL


def compare(
    baseline: dict,
    current: dict,
    options: Optional[GateOptions] = None,
) -> ExperimentComparison:
    """Diff two bench documents of the same experiment.

    The *current* document's config decides row identity and which metrics
    are gated (the code under test is authoritative); metrics that exist
    only in the baseline config are reported as ``missing``.
    """
    options = options or GateOptions()
    name = current.get("experiment", baseline.get("experiment", "?"))
    comparison = ExperimentComparison(experiment=name)

    for label, document in (("baseline", baseline), ("current", current)):
        errors = validate_document(document)
        if errors:
            comparison.problems.append(f"{label} document is invalid: {errors[0]}")
    if comparison.problems:
        return comparison
    if baseline["experiment"] != current["experiment"]:
        comparison.problems.append(
            f"experiment mismatch: baseline {baseline['experiment']!r} "
            f"vs current {current['experiment']!r}"
        )
        return comparison
    if baseline["schema_version"] != SCHEMA_VERSION:
        comparison.problems.append(
            f"baseline schema_version {baseline['schema_version']} != {SCHEMA_VERSION}"
        )
        return comparison

    config = current["config"]
    key_columns = list(config.get("key_columns", []))
    metrics: Dict[str, str] = dict(config.get("metrics", {}))
    tolerance = options.effective_tolerance(_is_ci(baseline, current))

    baseline_rows = _rows_by_key(baseline, key_columns)
    current_rows = _rows_by_key(current, key_columns)

    missing_keys = sorted(set(baseline_rows) - set(current_rows), key=repr)
    if missing_keys:
        comparison.problems.append(
            f"{len(missing_keys)} row(s) missing from the current run, "
            f"e.g. {key_columns}={missing_keys[0]!r}"
        )
    shared_keys = [key for key in baseline_rows if key in current_rows]

    baseline_metrics = set(baseline["config"].get("metrics", {}))
    for metric in sorted(baseline_metrics - set(metrics)):
        comparison.verdicts.append(MetricVerdict(
            experiment=name,
            metric=metric,
            direction=baseline["config"]["metrics"][metric],
            status=STATUS_MISSING,
            detail="metric gated in the baseline but absent from the current config",
        ))

    baseline_columns = set(baseline["result"]["columns"])
    for metric, direction in metrics.items():
        if metric not in baseline_columns:
            comparison.verdicts.append(MetricVerdict(
                experiment=name,
                metric=metric,
                direction=direction,
                status=STATUS_NEW,
                detail="no baseline column; not gated",
            ))
            continue
        comparison.verdicts.append(
            _compare_metric(name, metric, direction, shared_keys,
                            baseline_rows, current_rows, tolerance)
        )
    return comparison


def _compare_metric(
    experiment: str,
    metric: str,
    direction: str,
    shared_keys: Sequence[Tuple[object, ...]],
    baseline_rows: Dict[Tuple[object, ...], List[dict]],
    current_rows: Dict[Tuple[object, ...], List[dict]],
    tolerance: float,
) -> MetricVerdict:
    verdict = MetricVerdict(experiment=experiment, metric=metric, direction=direction)
    pairs: List[Tuple[object, object, Tuple[object, ...]]] = []
    for key in shared_keys:
        for before, after in zip(baseline_rows[key], current_rows[key]):
            if metric in before and metric in after:
                pairs.append((before[metric], after[metric], key))
    verdict.rows_compared = len(pairs)
    if not pairs:
        verdict.status = STATUS_MISSING
        verdict.detail = "no comparable rows carry this metric"
        return verdict

    if direction == "exact":
        mismatches = [(key, before, after) for before, after, key in pairs if before != after]
        if mismatches:
            key, before, after = mismatches[0]
            verdict.status = STATUS_REGRESSED
            verdict.detail = (
                f"{len(mismatches)} row(s) changed, e.g. key={key!r}: {before!r} -> {after!r}"
            )
        else:
            verdict.status = STATUS_NEUTRAL
        return verdict

    log_ratios: List[float] = []
    skipped = 0
    for before, after, _ in pairs:
        try:
            before_value = float(before)  # type: ignore[arg-type]
            after_value = float(after)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            skipped += 1
            continue
        if before_value <= 0 or after_value <= 0:
            skipped += 1
            continue
        ratio = after_value / before_value
        if direction == "higher":
            ratio = 1.0 / ratio
        log_ratios.append(math.log(ratio))
    if not log_ratios:
        verdict.status = STATUS_NEUTRAL
        verdict.detail = "no positive numeric pairs to compare"
        return verdict
    verdict.ratio = math.exp(sum(log_ratios) / len(log_ratios))
    verdict.status = _classify_ratio(verdict.ratio, tolerance)
    if skipped:
        verdict.detail = f"{skipped} row(s) skipped (non-positive or non-numeric)"
    return verdict


# ----------------------------------------------------------------------
# Directory-level comparison (what `repro bench --gate` runs)
# ----------------------------------------------------------------------
def load_documents(directory: str) -> Dict[str, dict]:
    """All ``BENCH_*.json`` documents in *directory*, keyed by experiment."""
    if not os.path.isdir(directory):
        raise GateError(f"not a directory: {directory!r}")
    documents: Dict[str, dict] = {}
    for entry in sorted(os.listdir(directory)):
        if not (entry.startswith("BENCH_") and entry.endswith(".json")):
            continue
        path = os.path.join(directory, entry)
        try:
            with open(path, encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise GateError(f"cannot read {path!r}: {error}") from error
        name = document.get("experiment") if isinstance(document, dict) else None
        if not isinstance(name, str):
            raise GateError(f"{path!r} is not a bench document (no experiment name)")
        documents[name] = document
    return documents


def compare_directories(
    baseline_dir: str,
    current_dir: str,
    options: Optional[GateOptions] = None,
) -> GateReport:
    """Gate every experiment in *current_dir* against *baseline_dir*."""
    options = options or GateOptions()
    baseline_documents = load_documents(baseline_dir)
    current_documents = load_documents(current_dir)
    if not baseline_documents:
        raise GateError(f"no BENCH_*.json documents in baseline {baseline_dir!r}")

    ci_guard = bool(os.environ.get("CI")) or any(
        document.get("environment", {}).get("ci")
        for documents in (baseline_documents, current_documents)
        for document in documents.values()
    )
    report = GateReport(
        tolerance=options.effective_tolerance(ci_guard),
        ci_guard=ci_guard,
        new_experiments=sorted(set(current_documents) - set(baseline_documents)),
        missing_experiments=sorted(set(baseline_documents) - set(current_documents)),
    )
    for name in sorted(set(baseline_documents) & set(current_documents)):
        report.comparisons.append(
            compare(baseline_documents[name], current_documents[name], options)
        )
    return report
