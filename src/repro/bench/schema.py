"""Schema of the machine-readable ``BENCH_<experiment>.json`` documents.

Every experiment run emits one JSON document describing *what* was measured
(the resolved config), *where* (the captured environment), and *what came
out* (the result table plus notes).  The schema is validated with plain
stdlib code -- no ``jsonschema`` dependency -- and is versioned so the
regression gate can refuse to diff documents it does not understand.

Volatile fields (wall-clock measurements, timestamps) are declared here so
both the determinism tests and the regression gate agree on what "the same
result" means across two runs of one commit.
"""

from __future__ import annotations

import copy
from typing import Dict, List

#: Bumped whenever the document layout changes incompatibly.
SCHEMA_VERSION = 1

#: The ``kind`` discriminator of every bench document.
DOCUMENT_KIND = "repro-bench-result"

#: Allowed metric directions (see :mod:`repro.bench.gate`).
METRIC_DIRECTIONS = ("lower", "higher", "exact")


class SchemaError(ValueError):
    """A bench JSON document does not conform to the declared schema."""


def _is_scalar(value: object) -> bool:
    return value is None or isinstance(value, (str, int, float, bool))


def _check(errors: List[str], mapping: object, path: str, fields: Dict[str, type]) -> bool:
    """Require *mapping* to be a dict carrying typed *fields*; collect errors."""
    if not isinstance(mapping, dict):
        errors.append(f"{path}: expected an object, got {type(mapping).__name__}")
        return False
    for name, expected in fields.items():
        if name not in mapping:
            errors.append(f"{path}.{name}: missing required field")
        elif expected is float:
            if not isinstance(mapping[name], (int, float)) or isinstance(mapping[name], bool):
                errors.append(f"{path}.{name}: expected a number")
        elif expected is int:
            if not isinstance(mapping[name], int) or isinstance(mapping[name], bool):
                errors.append(f"{path}.{name}: expected an integer")
        elif not isinstance(mapping[name], expected):
            errors.append(f"{path}.{name}: expected {expected.__name__}")
    return True


def validate_document(document: object) -> List[str]:
    """All schema violations of *document* (empty when it is valid)."""
    errors: List[str] = []
    if not _check(
        errors,
        document,
        "$",
        {
            "schema_version": int,
            "kind": str,
            "experiment": str,
            "config": dict,
            "environment": dict,
            "measurement": dict,
            "result": dict,
        },
    ):
        return errors
    assert isinstance(document, dict)

    if document.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"$.schema_version: expected {SCHEMA_VERSION}, got {document.get('schema_version')!r}"
        )
    if document.get("kind") != DOCUMENT_KIND:
        errors.append(f"$.kind: expected {DOCUMENT_KIND!r}, got {document.get('kind')!r}")

    config = document.get("config", {})
    if _check(
        errors,
        config,
        "$.config",
        {
            "name": str,
            "title": str,
            "description": str,
            "runner": str,
            "seed": int,
            "scale": float,
            "params": dict,
            "key_columns": list,
            "metrics": dict,
            "timing_columns": list,
        },
    ):
        if document.get("experiment") != config.get("name"):
            errors.append("$.experiment: must equal $.config.name")
        for direction in config.get("metrics", {}).values():
            if direction not in METRIC_DIRECTIONS:
                errors.append(
                    f"$.config.metrics: direction {direction!r} not in {METRIC_DIRECTIONS}"
                )

    _check(
        errors,
        document.get("environment", {}),
        "$.environment",
        {
            "python": str,
            "implementation": str,
            "platform": str,
            "cpu_count": int,
            "ci": bool,
            "generated_at": str,
        },
    )
    # git_sha is required but nullable (a source tarball has no repository).
    environment = document.get("environment", {})
    if isinstance(environment, dict):
        if "git_sha" not in environment:
            errors.append("$.environment.git_sha: missing required field")
        elif environment["git_sha"] is not None and not isinstance(environment["git_sha"], str):
            errors.append("$.environment.git_sha: expected a string or null")

    _check(
        errors,
        document.get("measurement", {}),
        "$.measurement",
        {"wall_seconds": float, "warmup_runs": int, "measured_runs": int},
    )

    result = document.get("result", {})
    if _check(
        errors,
        result,
        "$.result",
        {"name": str, "description": str, "columns": list, "rows": list, "notes": list},
    ):
        columns = result.get("columns", [])
        if not all(isinstance(column, str) for column in columns):
            errors.append("$.result.columns: every column name must be a string")
        for position, row in enumerate(result.get("rows", [])):
            if not isinstance(row, list):
                errors.append(f"$.result.rows[{position}]: expected a list")
            elif len(row) != len(columns):
                errors.append(
                    f"$.result.rows[{position}]: has {len(row)} cells, expected {len(columns)}"
                )
            elif not all(_is_scalar(cell) for cell in row):
                errors.append(f"$.result.rows[{position}]: cells must be JSON scalars")
        if not all(isinstance(note, str) for note in result.get("notes", [])):
            errors.append("$.result.notes: every note must be a string")

        config_columns = set(columns)
        if isinstance(config, dict) and isinstance(config.get("metrics"), dict):
            for column in config["metrics"]:
                if column not in config_columns:
                    errors.append(f"$.config.metrics: {column!r} is not a result column")
            for column in config.get("key_columns", []):
                if column not in config_columns:
                    errors.append(f"$.config.key_columns: {column!r} is not a result column")
            for column in config.get("timing_columns", []):
                if column not in config_columns:
                    errors.append(f"$.config.timing_columns: {column!r} is not a result column")
    return errors


def require_valid(document: object) -> None:
    """Raise :class:`SchemaError` when *document* violates the schema."""
    errors = validate_document(document)
    if errors:
        raise SchemaError("invalid bench document:\n  " + "\n  ".join(errors))


def strip_volatile(document: dict) -> dict:
    """A deep copy of *document* with every run-to-run volatile field masked.

    Two runs of the same config and seed on the same commit must produce
    identical stripped documents: the measurement block and the generation
    timestamp are dropped, and every cell of a column named in
    ``config.timing_columns`` is replaced by ``None``.
    """
    stripped = copy.deepcopy(document)
    stripped.pop("measurement", None)
    stripped.get("environment", {}).pop("generated_at", None)
    timing = set(stripped.get("config", {}).get("timing_columns", []))
    result = stripped.get("result", {})
    columns = result.get("columns", [])
    masked = [position for position, column in enumerate(columns) if column in timing]
    for row in result.get("rows", []):
        for position in masked:
            if position < len(row):
                row[position] = None
    return stripped
