"""Declarative experiment configurations.

An experiment is fully described by an :class:`ExperimentConfig`: which
runner function produces its table, with which parameters, at which seed,
and how its columns should be interpreted downstream (row identity, gated
metrics, timing-volatile cells).  Configs are immutable values -- deriving
a scaled or overridden variant returns a new config -- so a registry entry
can never be mutated by one caller behind another's back.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Tuple

from repro.bench.schema import METRIC_DIRECTIONS

#: Parameter names holding corpus sizes; ``scaled()`` multiplies these.
SCALABLE_PARAMS = ("sentence_count", "sentence_counts")


def _freeze(value: object) -> object:
    """Recursively turn lists/tuples into tuples so params stay hashable-ish."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


@dataclass(frozen=True)
class ExperimentConfig:
    """One registered experiment: runner + parameters + column semantics."""

    #: Registry name; also the stem of ``BENCH_<name>.json`` / ``<name>.txt``.
    name: str
    #: Human title, e.g. ``"Figure 8"``.
    title: str
    #: One-line description of what the experiment measures.
    description: str
    #: Name of the runner function in :data:`repro.bench.registry.RUNNERS`.
    runner: str
    #: Keyword arguments passed to the runner (after scaling).
    params: Mapping[str, object] = field(default_factory=dict)
    #: Seed of the experiment context (corpora are functions of (seed, size)).
    seed: int = 17
    #: Columns that together identify a row across runs (the gate's join key).
    key_columns: Tuple[str, ...] = ()
    #: Gated metric columns -> direction: "lower" / "higher" is better,
    #: "exact" must not change at all (correctness invariants).
    metrics: Mapping[str, str] = field(default_factory=dict)
    #: Columns holding wall-clock measurements; masked by determinism checks
    #: and held to the noise tolerance (instead of equality) by the gate.
    timing_columns: Tuple[str, ...] = ()
    #: Discarded runs of the whole experiment before the measured one.
    warmup: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(self, "metrics", dict(self.metrics))
        for column, direction in self.metrics.items():
            if direction not in METRIC_DIRECTIONS:
                raise ValueError(
                    f"config {self.name!r}: metric {column!r} has direction {direction!r}, "
                    f"expected one of {METRIC_DIRECTIONS}"
                )
        if self.warmup < 0:
            raise ValueError(f"config {self.name!r}: warmup must be >= 0")

    # ------------------------------------------------------------------
    def with_params(self, **overrides: object) -> "ExperimentConfig":
        """A copy with the given parameters replaced/added."""
        params = dict(self.params)
        params.update(overrides)
        return replace(self, params=params)

    def scaled(self, factor: float) -> "ExperimentConfig":
        """A copy whose corpus-size parameters are multiplied by *factor*.

        Only the well-known size parameters (:data:`SCALABLE_PARAMS`) are
        touched; every scaled size is clamped to at least one sentence.
        """
        if factor == 1.0:
            return self
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        params = dict(self.params)
        for key in SCALABLE_PARAMS:
            if key not in params:
                continue
            value = params[key]
            if isinstance(value, (list, tuple)):
                params[key] = tuple(max(1, int(item * factor)) for item in value)
            else:
                params[key] = max(1, int(value * factor))  # type: ignore[operator]
        return replace(self, params=params)

    # ------------------------------------------------------------------
    def as_dict(self, scale: float = 1.0) -> Dict[str, object]:
        """The JSON form embedded in a bench document."""
        return {
            "name": self.name,
            "title": self.title,
            "description": self.description,
            "runner": self.runner,
            "seed": self.seed,
            "scale": float(scale),
            "params": {key: _freeze(value) for key, value in self.params.items()},
            "key_columns": list(self.key_columns),
            "metrics": dict(self.metrics),
            "timing_columns": list(self.timing_columns),
        }
