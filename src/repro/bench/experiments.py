"""Experiment runners, one per table and figure of the paper's Section 6.

Every runner takes an :class:`~repro.bench.context.ExperimentContext` plus
explicit scale parameters and returns an
:class:`~repro.bench.results.ExperimentResult` whose rows correspond to the
series / rows of the original figure or table.  The default scales are laptop
sized; EXPERIMENTS.md records which scales were used for the committed
numbers and how they compare to the paper's trends.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, Iterable, List, Sequence, Tuple

from repro import obs
from repro.bench.context import ExperimentContext
from repro.bench.results import ExperimentResult
from repro.coding import get_coding
from repro.core.enumeration import enumerate_key_occurrences, subtree_count_by_root_branching
from repro.core.stats import count_postings, count_unique_keys
from repro.corpus.generator import CorpusGenerator
from repro.exec.executor import QueryExecutor
from repro.live import LiveIndex
from repro.query.decompose import min_rc, optimal_cover
from repro.query.model import QueryTree
from repro.query.optimizer import OptimizingExecutor
from repro.service.live import LiveQueryService
from repro.service.service import QueryService
from repro.service.sharded import ShardedQueryService
from repro.storage.bptree import BPlusTree
from repro.workloads.binning import MATCH_BINS, average, bin_for_match_count, group_by_query_size
from repro.workloads.wh import WH_GROUPS, wh_queries_by_group

#: The three coding schemes in the paper's display order.
CODINGS = ("filter", "root-split", "subtree-interval")


# ----------------------------------------------------------------------
# Figure 2: number of unique subtrees (index keys) vs corpus size
# ----------------------------------------------------------------------
def figure2_index_keys(
    context: ExperimentContext,
    sentence_counts: Sequence[int] = (1, 10, 100, 1_000, 10_000),
    mss_values: Sequence[int] = (1, 2, 3, 4, 5),
) -> ExperimentResult:
    """Count unique subtrees per ``mss`` for growing corpus sizes."""
    result = ExperimentResult(
        name="Figure 2",
        description="Number of index keys (unique subtrees) as a function of the input size",
        columns=["sentences", "mss", "unique_subtrees"],
    )
    for count in sentence_counts:
        corpus = context.corpus(count)
        keys = count_unique_keys(corpus, list(mss_values))
        for mss in mss_values:
            result.add_row(count, mss, keys[mss])
    result.add_note("paper: near-linear growth with corpus size, parallel curves per mss")
    return result


# ----------------------------------------------------------------------
# Figure 3: subtrees per node vs branching factor
# ----------------------------------------------------------------------
def figure3_branching(
    context: ExperimentContext,
    sentence_count: int = 1_500,
    sizes: Sequence[int] = (2, 3, 4, 5),
) -> ExperimentResult:
    """Average number of extracted subtrees per node by root branching factor."""
    result = ExperimentResult(
        name="Figure 3",
        description="Average number of subtrees per node in terms of the branching factor of the root",
        columns=["branching_factor", "subtree_size", "avg_subtrees"],
    )
    corpus = context.corpus(sentence_count)
    averages = subtree_count_by_root_branching(corpus, sizes=tuple(sizes))
    for branching, per_size in sorted(averages.items()):
        for size in sizes:
            result.add_row(branching, size, per_size.get(size, 0.0))
    result.add_note("paper: counts grow sharply with the branching factor, faster for larger sizes")
    return result


# ----------------------------------------------------------------------
# Figures 8-10 and Table 1: index size, posting counts, construction time
# ----------------------------------------------------------------------
def figure8_index_size(
    context: ExperimentContext,
    sentence_counts: Sequence[int] = (100, 1_000, 5_000),
    mss_values: Sequence[int] = (1, 2, 3, 4, 5),
    codings: Sequence[str] = CODINGS,
) -> ExperimentResult:
    """Index size in bytes per coding scheme, corpus size and ``mss``."""
    result = ExperimentResult(
        name="Figure 8",
        description="Subtree index size (bytes) for the three codings",
        columns=["sentences", "coding", "mss", "size_bytes", "build_seconds"],
    )
    for count in sentence_counts:
        for coding in codings:
            for mss in mss_values:
                index = context.subtree_index(count, coding, mss)
                result.add_row(count, coding, mss, index.size_bytes(), index.metadata.build_seconds)
    result.add_note("paper: filter-based < root-split << subtree interval; gap widens with mss")
    return result


def table1_size_ratio(figure8: ExperimentResult) -> ExperimentResult:
    """Ratio of the index size at ``mss=5`` to the size at ``mss=1`` (Table 1)."""
    result = ExperimentResult(
        name="Table 1",
        description="Ratio of the subtree index size when mss is 5 to the index size when mss is 1",
        columns=["sentences", "coding", "ratio"],
    )
    mss_values = sorted({row[2] for row in figure8.rows})
    low, high = mss_values[0], mss_values[-1]
    for count in sorted({row[0] for row in figure8.rows}):
        for coding in CODINGS:
            small = figure8.filtered(sentences=count, coding=coding, mss=low)
            large = figure8.filtered(sentences=count, coding=coding, mss=high)
            if not small or not large:
                continue
            result.add_row(count, coding, large[0][3] / small[0][3])
    result.add_note("paper: root-split shows the smallest growth ratio (12-15x), subtree interval the largest (~50x)")
    return result


def table1_from_context(
    context: ExperimentContext,
    sentence_counts: Sequence[int] = (100, 1_000, 5_000),
    mss_values: Sequence[int] = (1, 2, 3, 4, 5),
) -> ExperimentResult:
    """Table 1 as a standalone runner: measures Figure 8 and derives the ratios."""
    return table1_size_ratio(
        figure8_index_size(context, sentence_counts=sentence_counts, mss_values=mss_values)
    )


def figure9_posting_counts(
    context: ExperimentContext,
    sentence_counts: Sequence[int] = (100, 1_000, 5_000),
    mss_values: Sequence[int] = (1, 2, 3, 4, 5),
    codings: Sequence[str] = CODINGS,
) -> ExperimentResult:
    """Total number of postings per coding scheme, corpus size and ``mss``."""
    result = ExperimentResult(
        name="Figure 9",
        description="Total number of postings for the three codings",
        columns=["sentences", "coding", "mss", "postings"],
    )
    for count in sentence_counts:
        corpus = context.corpus(count)
        for mss in mss_values:
            totals = count_postings(corpus, mss, list(codings))
            for coding in codings:
                result.add_row(count, coding, mss, totals[coding])
    result.add_note("paper: equal for mss=1 (root-split vs subtree interval); gap widens with mss")
    return result


def figure10_build_time(
    context: ExperimentContext,
    sentence_counts: Sequence[int] = (100, 1_000, 5_000),
    mss_values: Sequence[int] = (1, 2, 3, 4, 5),
    codings: Sequence[str] = CODINGS,
) -> ExperimentResult:
    """Index construction time per coding scheme, corpus size and ``mss``."""
    result = ExperimentResult(
        name="Figure 10",
        description="Index construction time (seconds) for the three codings",
        columns=["sentences", "coding", "mss", "build_seconds"],
    )
    for count in sentence_counts:
        for coding in codings:
            for mss in mss_values:
                index = context.subtree_index(count, coding, mss)
                result.add_row(count, coding, mss, index.metadata.build_seconds)
    result.add_note("paper: filter-based ~ root-split < subtree interval; gap widens with mss")
    return result


# ----------------------------------------------------------------------
# Figures 11-12: query runtime by number of matches and by query size
# ----------------------------------------------------------------------
def _run_workload(
    context: ExperimentContext,
    sentence_count: int,
    coding: str,
    mss: int,
    queries: Iterable[QueryTree],
    repeats: int = 1,
) -> List[Tuple[QueryTree, int, float]]:
    """Run queries against one index; returns (query, match count, avg seconds)."""
    executor = context.executor(sentence_count, coding, mss)
    measurements: List[Tuple[QueryTree, int, float]] = []
    for query in queries:
        elapsed: List[float] = []
        matches = 0
        for _ in range(repeats):
            started = time.perf_counter()
            result = executor.execute(query)
            elapsed.append(time.perf_counter() - started)
            matches = result.total_matches
        measurements.append((query, matches, average(elapsed)))
    return measurements


def _workload_queries(context: ExperimentContext, sentence_count: int, max_fb_size: int = 10) -> List[QueryTree]:
    """The combined WH + FB workload of Section 6.3.1."""
    queries = [item.query for item in context.wh_queries()]
    queries.extend(item.query for item in context.fb_queries(sentence_count, max_size=max_fb_size))
    return queries


def figure11_runtime_by_matches(
    context: ExperimentContext,
    sentence_count: int = 2_000,
    mss_values: Sequence[int] = (1, 2, 3),
    codings: Sequence[str] = CODINGS,
    repeats: int = 1,
) -> ExperimentResult:
    """Average query runtime per match-count bin, coding and ``mss`` (Figure 11)."""
    result = ExperimentResult(
        name="Figure 11",
        description="Average runtime of queries in terms of the number of matches",
        columns=["coding", "mss", "match_bin", "queries", "avg_seconds"],
    )
    queries = _workload_queries(context, sentence_count)
    for coding in codings:
        for mss in mss_values:
            measurements = _run_workload(context, sentence_count, coding, mss, queries, repeats)
            binned: Dict[str, List[float]] = {label: [] for label, _, _ in MATCH_BINS}
            for _, matches, seconds in measurements:
                binned[bin_for_match_count(matches)].append(seconds)
            for label, _, _ in MATCH_BINS:
                times = binned[label]
                if times:
                    result.add_row(coding, mss, label, len(times), average(times))
    result.add_note("paper: runtimes fall as mss grows; root-split fastest for mss >= 2")
    return result


def figure12_runtime_by_query_size(
    context: ExperimentContext,
    sentence_count: int = 2_000,
    mss_values: Sequence[int] = (1, 2, 3),
    codings: Sequence[str] = CODINGS,
    min_matches: int = 10,
    repeats: int = 1,
) -> ExperimentResult:
    """Average query runtime by query size for queries with enough matches (Figure 12)."""
    result = ExperimentResult(
        name="Figure 12",
        description="Average runtime of queries in terms of the size of queries",
        columns=["coding", "mss", "query_size", "queries", "avg_seconds"],
    )
    queries = _workload_queries(context, sentence_count)
    for coding in codings:
        for mss in mss_values:
            measurements = _run_workload(context, sentence_count, coding, mss, queries, repeats)
            entries = [(query.size(), matches, seconds) for query, matches, seconds in measurements]
            for size, times in group_by_query_size(entries, min_matches=min_matches).items():
                result.add_row(coding, mss, size, len(times), average(times))
    result.add_note(
        f"queries with fewer than {min_matches} matches are excluded "
        "(the paper uses 100 at its much larger corpus scale)"
    )
    return result


# ----------------------------------------------------------------------
# Table 2: comparison with ATreeGrep and the frequency-based approach
# ----------------------------------------------------------------------
def table2_system_comparison(
    context: ExperimentContext,
    sentence_count: int = 2_000,
    mss: int = 3,
    cutoffs: Sequence[float] = (0.001, 0.01, 0.10),
    repeats: int = 1,
) -> ExperimentResult:
    """Average FB-query runtime per frequency class for SI root-split vs baselines."""
    result = ExperimentResult(
        name="Table 2",
        description=(
            "Average runtime (seconds) of FB query classes: subtree index with root-split "
            "coding (mss=3) vs ATreeGrep and frequency-based approaches"
        ),
        columns=["class", "system", "avg_seconds"],
    )
    fb = context.fb_queries(sentence_count)
    executor = context.executor(sentence_count, "root-split", mss)
    atreegrep = context.atreegrep(sentence_count)
    frequency_indexes = {cutoff: context.frequency_based(sentence_count, cutoff, mss) for cutoff in cutoffs}

    systems: List[Tuple[str, object]] = [("RS", executor), ("ATG", atreegrep)]
    systems.extend((f"FB({cutoff:g})", frequency_indexes[cutoff]) for cutoff in cutoffs)

    for frequency_class in fb.classes():
        class_queries = [item.query for item in fb.by_class(frequency_class)]
        for system_name, system in systems:
            times: List[float] = []
            for query in class_queries:
                elapsed: List[float] = []
                for _ in range(repeats):
                    started = time.perf_counter()
                    system.execute(query)  # type: ignore[attr-defined]
                    elapsed.append(time.perf_counter() - started)
                times.append(average(elapsed))
            result.add_row(frequency_class, system_name, average(times))
    result.add_note("paper: root-split is at least an order of magnitude faster across all classes")
    return result


# ----------------------------------------------------------------------
# Figure 13: scalability with the corpus size
# ----------------------------------------------------------------------
def figure13_scalability(
    context: ExperimentContext,
    sentence_counts: Sequence[int] = (500, 1_000, 2_000, 4_000),
    mss: int = 3,
    codings: Sequence[str] = CODINGS,
    repeats: int = 1,
) -> ExperimentResult:
    """Average FB-query runtime as the corpus grows (Figure 13; paper uses 1k..1M)."""
    result = ExperimentResult(
        name="Figure 13",
        description="Average runtime of queries (mss=3) over growing corpus sizes",
        columns=["sentences", "coding", "avg_seconds"],
    )
    # The same FB query set is evaluated at every corpus size, as in the paper.
    queries = [item.query for item in context.fb_queries(sentence_counts[0])]
    for count in sentence_counts:
        for coding in codings:
            measurements = _run_workload(context, count, coding, mss, queries, repeats)
            result.add_row(count, coding, average([seconds for _, _, seconds in measurements]))
    result.add_note("paper: near-linear growth; root-split has the smallest growth factor")
    return result


# ----------------------------------------------------------------------
# Table 3: number of joins per decomposition algorithm
# ----------------------------------------------------------------------
def table3_join_counts(
    mss_values: Sequence[int] = (2, 3, 4, 5),
) -> ExperimentResult:
    """Average number of joins per WH query group for minRC vs optimalCover (Table 3)."""
    result = ExperimentResult(
        name="Table 3",
        description=(
            "Average number of joins required over queries in the WH query set: "
            "r = root-split (minRC), s = subtree interval (optimalCover)"
        ),
        columns=["group", "mss", "joins_root_split", "joins_subtree_interval"],
    )
    grouped = wh_queries_by_group()
    for group in WH_GROUPS:
        queries = [item.query for item in grouped[group]]
        for mss in mss_values:
            rs = average([float(len(min_rc(query, mss)) - 1) for query in queries])
            si = average([float(len(optimal_cover(query, mss)) - 1) for query in queries])
            result.add_row(group, mss, rs, si)
    result.add_note("paper: optimalCover needs fewer joins; both decrease as mss grows")
    return result


# ----------------------------------------------------------------------
# Sharding experiment: parallel build speedup and fan-out query latency
# ----------------------------------------------------------------------
def shard_scalability(
    context: ExperimentContext,
    sentence_count: int = 1_200,
    shard_counts: Sequence[int] = (1, 2, 4, 8),
    mss: int = 3,
    coding: str = "root-split",
    partitioner: str = "hash",
    warm_passes: int = 2,
) -> ExperimentResult:
    """Build time and query latency of the WH workload at 1/2/4/8 shards.

    For every shard count N the corpus is partitioned, built with N worker
    processes (one per shard) and served through a fresh
    :class:`ShardedQueryService`:

    * **build_seconds** -- wall time of the whole sharded build (partition,
      N parallel ``SubtreeIndex`` + ``TreeStore`` builds, manifest write);
    * **build_speedup** -- the 1-shard build time divided by this row's
      (> 1 means the parallel build won; bounded by the core count);
    * **cold/warm_ms_per_query** -- fan-out latency of the WH workload with
      empty caches and after *warm_passes* repetitions;
    * **total_matches** -- summed over the workload; identical across rows
      by the merge-correctness invariant, and asserted on by the benchmark.

    The baseline row is the 1-shard configuration when present (one shard,
    one worker, no pool -- the same work the unsharded builder does),
    otherwise the smallest shard count requested.
    """
    result = ExperimentResult(
        name="Shard scalability",
        description=(
            "Parallel build time and fan-out query latency of the sharded index "
            f"({coding}, mss={mss}, {sentence_count} sentences, WH workload)"
        ),
        columns=[
            "shards",
            "workers",
            "build_seconds",
            "build_speedup",
            "cold_ms_per_query",
            "warm_ms_per_query",
            "total_matches",
        ],
    )
    queries = [item.query for item in context.wh_queries()]
    # Build every configuration first so the speedup baseline exists no
    # matter how shard_counts is ordered (or whether it includes 1 at all).
    built = {
        shards: context.sharded_index(
            sentence_count, coding, mss, shards, workers=shards, partitioner=partitioner
        )
        for shards in shard_counts
    }
    baseline_shards = 1 if 1 in built else min(built)
    base_build_seconds = built[baseline_shards].manifest.build_wall_seconds

    for shards in shard_counts:
        sharded = built[shards]
        workers = shards
        build_seconds = sharded.manifest.build_wall_seconds
        sharded.reset_probe_stats()
        service = ShardedQueryService(sharded)
        try:
            total_matches = 0
            cold_started = time.perf_counter()
            for query in queries:
                total_matches += service.run(query).total_matches
            cold_seconds = time.perf_counter() - cold_started

            warm_started = time.perf_counter()
            for _ in range(warm_passes):
                for query in queries:
                    service.run(query)
            warm_seconds = (time.perf_counter() - warm_started) / warm_passes
        finally:
            service.close()

        result.add_row(
            shards,
            workers,
            build_seconds,
            base_build_seconds / build_seconds if build_seconds else float("inf"),
            cold_seconds * 1000 / len(queries),
            warm_seconds * 1000 / len(queries),
            total_matches,
        )
    result.add_note(
        f"build_speedup is relative to the {baseline_shards}-shard build; "
        "parallel gains require as many free cores as workers"
    )
    result.add_note(
        "warm passes repeat the workload through the populated service caches "
        "(plans, per-shard postings and results)"
    )
    return result


# ----------------------------------------------------------------------
# Live-index experiment: update throughput, delta-fraction latency, compaction
# ----------------------------------------------------------------------
def update_throughput(
    context: ExperimentContext,
    sentence_count: int = 600,
    delta_fractions: Sequence[float] = (0.0, 0.10, 0.50),
    mss: int = 3,
    coding: str = "root-split",
) -> ExperimentResult:
    """Mutation cost of the live index at growing delta fractions.

    For every fraction *f* a live index is created over the base corpus and
    ``f * sentence_count`` extra trees are appended through the WAL'd
    ``add_tree`` path.  The row records:

    * **adds_per_sec** -- acknowledged (fsynced) adds per second;
    * **query_ms_delta** -- WH-workload latency served *with* the delta in
      place (base segment merged with the memtable at query time);
    * **compact_seconds** -- cost of folding the delta into an immutable
      segment (build + atomic manifest swap + WAL truncation);
    * **query_ms_compacted** -- the same workload once fully on-disk;
    * **total_matches / total_matches_compacted** -- summed over the
      workload before and after compaction; identical by the equivalence
      invariant, which ``benchmarks/test_update_throughput.py`` asserts.
    """
    result = ExperimentResult(
        name="Update throughput",
        description=(
            "Live-index mutation cost: fsynced adds/sec, WH query latency at "
            f"0/10/50% delta fraction, and compaction time ({coding}, mss={mss}, "
            f"{sentence_count}-sentence base corpus)"
        ),
        columns=[
            "delta_fraction",
            "base_trees",
            "delta_trees",
            "adds_per_sec",
            "query_ms_delta",
            "compact_seconds",
            "query_ms_compacted",
            "total_matches",
            "total_matches_compacted",
        ],
    )
    queries = [item.query for item in context.wh_queries()]
    base = list(context.corpus(sentence_count))

    def run_workload(live: LiveIndex) -> Tuple[float, int]:
        """Cold ms/query and summed matches through a fresh LiveQueryService."""
        service = LiveQueryService(live)
        try:
            total = 0
            started = time.perf_counter()
            for query in queries:
                total += service.run(query).total_matches
            return (time.perf_counter() - started) * 1000 / len(queries), total
        finally:
            service.close()

    for fraction in delta_fractions:
        delta_count = int(round(sentence_count * fraction))
        extra = CorpusGenerator(seed=context.seed + 104729).generate_list(delta_count)
        path = os.path.join(
            context.workdir, f"live-{sentence_count}-{coding}-{mss}-f{int(fraction * 100)}"
        )
        live = LiveIndex.create(path, mss=mss, coding=coding, trees=base)
        try:
            add_started = time.perf_counter()
            for tree in extra:
                live.add_tree(tree.root)
            add_seconds = time.perf_counter() - add_started
            delta_ms, total = run_workload(live)
            compact_seconds = live.compact().seconds if delta_count else 0.0
            compacted_ms, total_compacted = run_workload(live)
        finally:
            live.close()
        result.add_row(
            fraction,
            len(base),
            delta_count,
            delta_count / add_seconds if add_seconds and delta_count else 0.0,
            delta_ms,
            compact_seconds,
            compacted_ms,
            total,
            total_compacted,
        )
    result.add_note(
        "adds are acknowledged only after an fsynced WAL append; delta queries "
        "merge the in-memory memtable with the base segment at lookup time"
    )
    result.add_note("total_matches == total_matches_compacted is the equivalence invariant")
    return result


# ----------------------------------------------------------------------
# Serving experiment: cold vs warm-cache latency through the QueryService
# ----------------------------------------------------------------------
def serve_cold_warm(
    context: ExperimentContext,
    sentence_count: int = 1_200,
    mss: int = 3,
    codings: Sequence[str] = ("root-split", "subtree-interval"),
    warm_passes: int = 3,
) -> ExperimentResult:
    """Cold vs warm vs hot latency of the WH workload served repeatedly.

    Each coding's index is wrapped in a fresh :class:`QueryService` and the
    WH query set is evaluated at three cache temperatures:

    * **cold** -- empty caches: parse + decompose + fetch + join per query;
    * **warm** -- plan and posting caches populated (result cache disabled):
      joins still run, but parsing, decomposition, B+Tree descents and
      posting decoding are all served from memory;
    * **hot** -- the result cache answers identical repeats outright.

    This is the serving-layer counterpart of Figures 11/12: the same joins,
    with progressively more of the pipeline amortised across repetitions.
    """
    result = ExperimentResult(
        name="Serve",
        description="Cold vs warm-cache vs hot-cache latency of repeated queries through QueryService",
        columns=[
            "coding",
            "queries",
            "cold_ms_per_query",
            "warm_ms_per_query",
            "hot_ms_per_query",
            "warm_speedup",
            "hot_speedup",
            "postings_hit_rate",
            "tree_descents",
        ],
    )
    queries = [item.query for item in context.wh_queries()]
    for coding in codings:
        index = context.subtree_index(sentence_count, coding, mss)
        store = context.tree_store(sentence_count)
        index.reset_probe_stats()  # the context shares indexes across experiments
        service = QueryService(index, store=store, result_cache_size=0)
        try:
            cold_started = time.perf_counter()
            for query in queries:
                service.run(query)
            cold_seconds = time.perf_counter() - cold_started

            warm_started = time.perf_counter()
            for _ in range(warm_passes):
                for query in queries:
                    service.run(query)
            warm_seconds = (time.perf_counter() - warm_started) / warm_passes
            warm_stats = service.stats()
        finally:
            # The context owns the index; only drop the service's caches.
            service.clear_caches()
            index.attach_postings_cache(None)

        hot_service = QueryService(index, store=store)
        try:
            for query in queries:  # populate every cache, result cache included
                hot_service.run(query)
            hot_started = time.perf_counter()
            for _ in range(warm_passes):
                for query in queries:
                    hot_service.run(query)
            hot_seconds = (time.perf_counter() - hot_started) / warm_passes
        finally:
            hot_service.clear_caches()
            index.attach_postings_cache(None)

        result.add_row(
            coding,
            len(queries),
            cold_seconds * 1000 / len(queries),
            warm_seconds * 1000 / len(queries),
            hot_seconds * 1000 / len(queries),
            cold_seconds / warm_seconds if warm_seconds else float("inf"),
            cold_seconds / hot_seconds if hot_seconds else float("inf"),
            warm_stats.postings.hit_rate,
            warm_stats.probes.tree_descents,
        )
    result.add_note(
        "warm reuses cached plans and decoded postings (joins still run); "
        "hot answers identical repeats from the result cache"
    )
    return result


# ----------------------------------------------------------------------
# Serve HTTP: closed-loop throughput/latency through the asyncio server
# ----------------------------------------------------------------------
def serve_http_throughput(
    context: ExperimentContext,
    sentence_count: int = 600,
    mss: int = 3,
    coding: str = "root-split",
    concurrency_levels: Sequence[int] = (1, 2, 4),
    duration_seconds: float = 1.0,
    flush_window: float = 0.002,
) -> ExperimentResult:
    """Throughput vs latency of the HTTP serving layer under a closed loop.

    The WH + FB query mix is driven through :mod:`repro.serve`'s asyncio
    server by the closed-loop load generator at each concurrency level.
    Every response payload is checked against the in-process
    ``QueryService.run`` ground truth (the ``mismatches`` column must stay
    zero: the HTTP hop adds latency, never different answers), so the
    experiment is simultaneously the serving-layer equivalence test and its
    performance profile.
    """
    from repro.serve.loadgen import run_load
    from repro.serve.server import ServerThread, result_to_dict

    result = ExperimentResult(
        name="Serve HTTP throughput",
        description=(
            "Closed-loop throughput and latency of the asyncio HTTP server "
            f"over the {coding} index (mss={mss})"
        ),
        columns=[
            "concurrency",
            "duration_seconds",
            "requests",
            "errors",
            "mismatches",
            "qps",
            "qps_traced",
            "trace_overhead_pct",
            "p50_ms",
            "p95_ms",
            "p99_ms",
        ],
    )
    index = context.subtree_index(sentence_count, coding, mss)
    store = context.tree_store(sentence_count)
    texts = [item.text for item in context.wh_queries()]
    texts.extend(item.text for item in context.fb_queries(sentence_count))
    service = QueryService(index, store=store)
    try:
        # Warm every cache, then snapshot the ground truth.  With warm
        # result caches the server returns the very objects the snapshot
        # was built from, so responses must match byte for byte.
        service.run_many(texts)
        expected = {text: _json_roundtrip(result_to_dict(service.run(text))) for text in texts}
        with ServerThread(service, flush_window=flush_window) as thread:
            for concurrency in concurrency_levels:
                report = run_load(
                    thread.url,
                    texts,
                    concurrency=concurrency,
                    duration=duration_seconds,
                    expected=expected,
                )
                # Same load with request tracing on, to price the observable
                # path.  The server checks the global flag per request, so no
                # restart is needed; errors/mismatches from both passes land
                # in the same exact-gated columns.
                owned_tracer = not obs.enabled()
                if owned_tracer:
                    obs.enable(obs.Tracer(capacity=256))
                try:
                    traced = run_load(
                        thread.url,
                        texts,
                        concurrency=concurrency,
                        duration=duration_seconds,
                        expected=expected,
                    )
                finally:
                    if owned_tracer:
                        obs.disable()
                overhead_pct = (
                    (report.qps - traced.qps) / report.qps * 100.0 if report.qps else 0.0
                )
                latency = report.percentiles_ms()
                result.add_row(
                    concurrency,
                    report.duration_seconds,
                    report.requests,
                    report.errors + traced.errors,
                    report.mismatches + traced.mismatches,
                    report.qps,
                    traced.qps,
                    round(overhead_pct, 2),
                    latency["p50"],
                    latency["p95"],
                    latency["p99"],
                )
    finally:
        # The context owns the index; only drop the service's caches.
        service.clear_caches()
        index.attach_postings_cache(None)
    result.add_note(
        "closed loop: each client issues its next query only after the previous "
        "response; mismatches counts responses that differ from QueryService.run "
        "(untraced and traced passes summed); qps_traced repeats the run with "
        "request tracing enabled"
    )
    return result


def _json_roundtrip(payload: Dict[str, object]) -> Dict[str, object]:
    """*payload* as it looks after one encode/decode hop (float repr etc.)."""
    return json.loads(json.dumps(payload))


# ----------------------------------------------------------------------
# Serve overload: open-loop fixed-rate arrivals vs the bounded queue
# ----------------------------------------------------------------------
def serve_overload(
    context: ExperimentContext,
    sentence_count: int = 600,
    mss: int = 3,
    coding: str = "root-split",
    duration_seconds: float = 1.5,
    calibration_seconds: float = 0.75,
    rate_multiples: Sequence[Tuple[str, float]] = (("below", 0.5), ("above", 3.0)),
    arrivals: str = "poisson",
    max_queue: int = 16,
    max_workers: int = 2,
    max_clients: int = 128,
    profile: str = "fb_heavy",
) -> ExperimentResult:
    """Latency and shedding under *open-loop* load below and above capacity.

    The closed-loop experiment (``serve_http_throughput``) lets clients
    slow down with the server, which hides queueing delay under overload
    (coordinated omission).  Here the FB-heavy query mix is offered at a
    *fixed* arrival rate -- first well below, then well above the server's
    measured capacity -- against a server configured with a small bounded
    executor queue.  Above capacity the server must *shed* (503 +
    ``Retry-After``) rather than queue unboundedly, so the accepted-request
    p99 stays bounded while ``shed`` grows; every accepted response is
    still verified against the in-process ``QueryService.run`` ground
    truth (``errors`` and ``mismatches`` are exact gate metrics).

    Capacity is calibrated in-situ with a short closed-loop burst, so the
    below/above distinction holds on slow and fast machines alike.
    """
    from repro.serve.loadgen import profile_mix, run_load, run_open_loop
    from repro.serve.server import ServerThread, result_to_dict

    result = ExperimentResult(
        name="Serve overload",
        description=(
            "Open-loop fixed-rate load below/above capacity against the "
            f"bounded-queue HTTP server ({coding}, mss={mss}, "
            f"max_queue={max_queue}, {arrivals} arrivals)"
        ),
        columns=[
            "load",
            "rate_qps",
            "duration_seconds",
            "offered",
            "accepted",
            "shed",
            "errors",
            "mismatches",
            "overflowed",
            "p50_ms",
            "p99_ms",
        ],
    )
    index = context.subtree_index(sentence_count, coding, mss)
    store = context.tree_store(sentence_count)
    wh_texts = [item.text for item in context.wh_queries()]
    fb_texts = [item.text for item in context.fb_queries(sentence_count)]
    mix = profile_mix(wh_texts, fb_texts, profile=profile, seed=context.seed)
    service = QueryService(index, store=store)
    try:
        # Warm every cache, then snapshot the ground truth the open-loop
        # clients verify accepted responses against.
        service.run_many(mix)
        expected = {
            text: _json_roundtrip(result_to_dict(service.run(text)))
            for text in dict.fromkeys(mix)
        }
        # The client fleet must fit inside the server's connection budget:
        # excess clients would be shed at *accept* (503 + close), and the
        # resulting reconnect churn can overflow the listen backlog into
        # client-side resets -- measured as errors, which gate at zero.
        # Here the bounded executor queue is the shedder under test.
        with ServerThread(
            service, max_queue=max_queue, max_workers=max_workers,
            max_connections=max_clients + 16,
        ) as thread:
            calibration = run_load(
                thread.url, mix, concurrency=2, duration=calibration_seconds,
                expected=expected,
            )
            capacity = max(calibration.qps, 50.0)  # floor keeps rates sane
            for label, multiple in rate_multiples:
                report = run_open_loop(
                    thread.url,
                    mix,
                    rate=capacity * multiple,
                    duration=duration_seconds,
                    arrivals=arrivals,
                    seed=context.seed + int(multiple * 100),
                    expected=expected,
                    max_clients=max_clients,
                )
                latency = report.percentiles_ms()
                result.add_row(
                    label,
                    report.rate,
                    report.duration_seconds,
                    report.offered,
                    report.accepted,
                    report.shed,
                    report.errors,
                    report.mismatches,
                    report.overflowed,
                    latency["p50"] or 0.0,
                    latency["p99"] or 0.0,
                )
    finally:
        # The context owns the index; only drop the service's caches.
        service.clear_caches()
        index.attach_postings_cache(None)
    result.add_note(
        f"open loop: {arrivals} arrivals at a fixed rate regardless of response "
        "times, so overload latency is measured honestly; 'shed' counts 503 "
        "load-shedding responses (bounded executor queue), which are not errors"
    )
    result.add_note(
        "capacity is measured in-situ by a short closed-loop calibration burst; "
        "'below'/'above' rates are fixed multiples of it"
    )
    return result


# ----------------------------------------------------------------------
# Serve mixed read/write: live-index mutations under read traffic
# ----------------------------------------------------------------------
def serve_mixed_rw(
    context: ExperimentContext,
    sentence_count: int = 400,
    mss: int = 3,
    coding: str = "root-split",
    duration_seconds: float = 1.5,
    verify_seconds: float = 0.75,
    concurrency: int = 2,
    write_pause: float = 0.002,
) -> ExperimentResult:
    """HTTP read traffic over a live index while writes mutate it.

    A live index is served over HTTP and driven by the closed-loop WH
    workload while a writer thread adds and deletes held-out trees through
    the WAL'd mutation path (every add acknowledged only after an fsync,
    every add later deleted, so the corpus ends where it began).  During
    the mutating phase responses cannot be compared against a static
    snapshot -- answers legitimately change under their feet -- so the
    gate there is ``errors == 0``: the server never drops or 500s a read
    because a write was in flight.  Once the writer stops, a verification
    pass checks every served response against fresh ``service.run`` ground
    truth (``mismatches`` exact-zero), closing the loop on correctness.
    """
    from repro.serve.loadgen import run_load
    from repro.serve.server import ServerThread, result_to_dict

    result = ExperimentResult(
        name="Serve mixed read/write",
        description=(
            "Closed-loop HTTP reads over a live index while a writer thread "
            f"adds/deletes trees ({coding}, mss={mss}, fsynced WAL appends)"
        ),
        columns=[
            "phase",
            "duration_seconds",
            "requests",
            "errors",
            "mismatches",
            "qps",
            "adds",
            "deletes",
            "writes_per_sec",
            "p50_ms",
            "p99_ms",
        ],
    )
    texts = [item.text for item in context.wh_queries()]
    base = list(context.corpus(sentence_count))
    path = os.path.join(context.workdir, f"mixed-rw-{sentence_count}-{coding}-{mss}")
    live = LiveIndex.create(path, mss=mss, coding=coding, trees=base)
    try:
        service = LiveQueryService(live)
        try:
            service.run_many(texts)  # warm plans and postings
            held_out = context.held_out_trees(64)
            stop = threading.Event()
            counts = {"adds": 0, "deletes": 0}

            def mutate() -> None:
                position = 0
                while not stop.is_set():
                    tree = held_out[position % len(held_out)]
                    tid = live.add_tree(tree.root)
                    counts["adds"] += 1
                    time.sleep(write_pause)
                    live.delete_tree(tid)
                    counts["deletes"] += 1
                    position += 1
                    time.sleep(write_pause)

            with ServerThread(service) as thread:
                writer = threading.Thread(target=mutate, name="mixed-rw-writer", daemon=True)
                writer.start()
                try:
                    mutating = run_load(
                        thread.url, texts, concurrency=concurrency,
                        duration=duration_seconds,
                    )
                finally:
                    stop.set()
                    writer.join(timeout=30.0)
                write_seconds = mutating.duration_seconds or 1.0
                latency = mutating.percentiles_ms()
                result.add_row(
                    "mutating",
                    mutating.duration_seconds,
                    mutating.requests,
                    mutating.errors,
                    mutating.mismatches,
                    mutating.qps,
                    counts["adds"],
                    counts["deletes"],
                    (counts["adds"] + counts["deletes"]) / write_seconds,
                    latency["p50"] or 0.0,
                    latency["p99"] or 0.0,
                )
                # The writer balanced every add with a delete, so the final
                # answers must equal fresh in-process ground truth.
                expected = {
                    text: _json_roundtrip(result_to_dict(service.run(text)))
                    for text in texts
                }
                settled = run_load(
                    thread.url, texts, concurrency=1, duration=verify_seconds,
                    expected=expected,
                )
                latency = settled.percentiles_ms()
                result.add_row(
                    "settled",
                    settled.duration_seconds,
                    settled.requests,
                    settled.errors,
                    settled.mismatches,
                    settled.qps,
                    0,
                    0,
                    0.0,
                    latency["p50"] or 0.0,
                    latency["p99"] or 0.0,
                )
        finally:
            service.close()
    finally:
        live.close()
    result.add_note(
        "mutating phase: reads race fsynced add/delete pairs (no static ground "
        "truth exists, the gate is zero errors); settled phase: every served "
        "response verified against fresh service.run ground truth"
    )
    return result


# ----------------------------------------------------------------------
# Ablations: decomposition policy and B+Tree loading strategy
# ----------------------------------------------------------------------
def ablation_cover_selection(
    context: ExperimentContext,
    sentence_count: int = 1_200,
    mss: int = 3,
) -> ExperimentResult:
    """Query runtime of the root-split index under different decomposition policies.

    Ablates the two cover-construction knobs called out in DESIGN.md --
    padding towards ``mss`` (Section 5.2.1's max-covers) and the
    selectivity-aware cover selection of :mod:`repro.query.optimizer` --
    over the combined WH + FB workload.  All policies must return identical
    answers; the experiment raises if one changes any query's matches.
    """
    result = ExperimentResult(
        name="Ablation: cover construction",
        description=(
            "Average query runtime of the root-split index (mss="
            f"{mss}) under different decomposition policies"
        ),
        columns=["policy", "avg_seconds", "total_matches"],
    )
    index = context.subtree_index(sentence_count, "root-split", mss)
    store = context.tree_store(sentence_count)
    queries = _workload_queries(context, sentence_count)
    variants = [
        ("minRC + padding (default)", QueryExecutor(index, store=store, pad=True)),
        ("minRC, no padding", QueryExecutor(index, store=store, pad=False)),
        ("selectivity-optimised", OptimizingExecutor(index, store=store)),
    ]
    baseline_matches: Dict[str, int] = {}
    for policy, executor in variants:
        times: List[float] = []
        matches: Dict[str, int] = {}
        for query in queries:
            started = time.perf_counter()
            outcome = executor.execute(query)
            times.append(time.perf_counter() - started)
            matches[query.to_string()] = outcome.total_matches
        if not baseline_matches:
            baseline_matches = matches
        elif matches != baseline_matches:
            raise AssertionError(f"policy {policy!r} changed query results")
        result.add_row(policy, average(times), sum(matches.values()))
    result.add_note("all policies must return identical answers (checked while measuring)")
    return result


def ablation_storage(
    context: ExperimentContext,
    sentence_count: int = 300,
    mss: int = 3,
    coding: str = "root-split",
) -> ExperimentResult:
    """Building the index B+Tree by sorted bulk load vs one insert per key.

    The subtree index bulk-loads its B+Tree from key-sorted posting lists
    (the paper builds once over a static corpus); this quantifies what that
    buys over naive per-key inserts and checks both strategies answer
    lookups identically.
    """
    result = ExperimentResult(
        name="Ablation: B+Tree loading strategy",
        description="Building the index B+Tree by sorted bulk load vs one insert per key",
        columns=["strategy", "seconds", "file_bytes", "height"],
    )
    scheme = get_coding(coding)
    posting_lists: Dict[str, List[object]] = {}
    for tree in context.corpus(sentence_count):
        per_key: Dict[str, List[object]] = {}
        for key, occurrence in enumerate_key_occurrences(tree, mss):
            per_key.setdefault(key, []).append(occurrence)
        for key, occurrences in per_key.items():
            posting_lists.setdefault(key, []).extend(scheme.postings_from_occurrences(occurrences))
    items = [(key, scheme.encode_postings(posting_lists[key])) for key in sorted(posting_lists)]

    strategies = ("bulk load (sorted)", "per-key inserts")
    trees: List[BPlusTree] = []
    try:
        for strategy in strategies:
            stem = "bulk" if strategy.startswith("bulk") else "insert"
            path = os.path.join(context.workdir, f"ablation-{sentence_count}-{mss}-{stem}.bpt")
            if os.path.exists(path):
                os.remove(path)
            started = time.perf_counter()
            tree = BPlusTree(path)
            if stem == "bulk":
                tree.bulk_load(items)
            else:
                for key, value in items:
                    tree.insert(key, value)
            seconds = time.perf_counter() - started
            trees.append(tree)
            result.add_row(strategy, seconds, tree.size_bytes(), tree.height)

        # Both trees must answer lookups identically (sampled).
        bulk, inserted = trees
        for key, value in items[:: max(1, len(items) // 200)]:
            assert bulk.get(key) == value == inserted.get(key)
    finally:
        for tree in trees:
            tree.close()
    result.add_note("both strategies must answer sampled lookups identically (checked)")
    return result
