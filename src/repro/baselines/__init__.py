"""Baseline systems the paper compares against.

All four baselines answer the same question as the subtree index -- "which
trees match this query, and at which nodes?" -- with different storage and
evaluation strategies:

* :mod:`repro.baselines.node_index` -- the *node approach*: an LPath-style
  inverted index over single node labels with interval codes, evaluated with
  MPMGJN structural joins (the paper's main relational baseline, and the
  ``mss = 1`` boundary case of the subtree index).
* :mod:`repro.baselines.tgrep_scan` -- a TGrep2 / CorpusSearch style
  full-scan engine: load the corpus in memory, match every tree.
* :mod:`repro.baselines.atreegrep` -- an ATreeGrep-style index: root-to-leaf
  paths in a suffix-array-like path index plus a node/edge pre-filter, with
  candidate post-validation.
* :mod:`repro.baselines.frequency_based` -- the TreePi adaptation the paper
  calls the *frequency-based approach*: all single nodes plus the top-x% most
  frequent subtrees as keys, with post-validation.
"""

from repro.baselines.atreegrep import ATreeGrepIndex
from repro.baselines.frequency_based import FrequencyBasedIndex
from repro.baselines.node_index import NodeIntervalIndex
from repro.baselines.tgrep_scan import TGrepScanner

__all__ = [
    "NodeIntervalIndex",
    "TGrepScanner",
    "ATreeGrepIndex",
    "FrequencyBasedIndex",
]
