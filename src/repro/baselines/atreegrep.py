"""An ATreeGrep-style path index with candidate post-validation.

ATreeGrep (Shasha et al., SSDBM 2002) indexes the root-to-leaf paths of all
data trees in a suffix array and keeps a hash index over node and edge labels
as a pre-filter.  A query is decomposed into its root-to-leaf paths, each path
is matched against the suffix array (a query path has to be a *prefix of a
suffix* of some data path, i.e. a downward path segment) and the surviving
candidate trees are validated against the query.

This reproduction keeps the same three ingredients -- label/edge pre-filter,
sorted path-suffix lookup, exact post-validation -- which is what determines
its performance class relative to the subtree index in Table 2 of the paper.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.corpus.store import Corpus, TreeStore
from repro.exec.executor import ExecutionStats, QueryResult
from repro.query.model import QueryNode, QueryTree
from repro.trees.matching import AXIS_CHILD, count_matches
from repro.trees.node import Node, ParseTree


def _node_to_leaf_suffixes(tree: ParseTree) -> Iterable[Tuple[str, ...]]:
    """Yield every downward node-to-leaf label path of *tree*."""
    def walk(node: Node, prefix: List[str]) -> Iterable[Tuple[str, ...]]:
        prefix.append(node.label)
        if node.is_leaf:
            # Every suffix of the root-to-leaf path is a node-to-leaf path.
            for start in range(len(prefix)):
                yield tuple(prefix[start:])
        else:
            for child in node.children:
                yield from walk(child, prefix)
        prefix.pop()

    return walk(tree.root, [])


class ATreeGrepIndex:
    """Path-suffix index with node/edge pre-filtering and post-validation."""

    def __init__(
        self,
        suffixes: List[Tuple[Tuple[str, ...], int]],
        label_tids: Dict[str, Set[int]],
        edge_tids: Dict[Tuple[str, str], Set[int]],
        store: Corpus | TreeStore,
    ):
        self._suffixes = suffixes
        self._label_tids = label_tids
        self._edge_tids = edge_tids
        self._store = store

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, trees: Iterable[ParseTree], store: Corpus | TreeStore) -> "ATreeGrepIndex":
        """Build the path index over *trees*; *store* provides trees for validation."""
        suffixes: List[Tuple[Tuple[str, ...], int]] = []
        label_tids: Dict[str, Set[int]] = {}
        edge_tids: Dict[Tuple[str, str], Set[int]] = {}
        for tree in trees:
            seen_paths: Set[Tuple[str, ...]] = set(_node_to_leaf_suffixes(tree))
            for path in seen_paths:
                suffixes.append((path, tree.tid))
            for node in tree.preorder():
                label_tids.setdefault(node.label, set()).add(tree.tid)
                for child in node.children:
                    edge_tids.setdefault((node.label, child.label), set()).add(tree.tid)
        suffixes.sort()
        return cls(suffixes, label_tids, edge_tids, store)

    # ------------------------------------------------------------------
    # Candidate generation
    # ------------------------------------------------------------------
    def _tids_with_path_prefix(self, path: Sequence[str]) -> Set[int]:
        """Trees containing a downward path that starts with *path*."""
        prefix = tuple(path)
        out: Set[int] = set()
        index = bisect_left(self._suffixes, (prefix, -1))
        while index < len(self._suffixes):
            candidate, tid = self._suffixes[index]
            if candidate[: len(prefix)] != prefix:
                break
            out.add(tid)
            index += 1
        return out

    @staticmethod
    def _query_paths(query: QueryTree) -> List[List[str]]:
        """Rigid (all-``/``) root-to-leaf label paths of the query."""
        paths: List[List[str]] = []

        def walk(node: QueryNode, prefix: List[str]) -> None:
            prefix.append(node.label)
            rigid_children = [
                child
                for child, axis in zip(node.children, node.child_axes)
                if axis == AXIS_CHILD
            ]
            if not rigid_children:
                paths.append(list(prefix))
            else:
                for child in rigid_children:
                    walk(child, prefix)
            prefix.pop()

        walk(query.root, [])
        return paths

    def _prefilter(self, query: QueryTree) -> Set[int]:
        """Intersect the label and edge hash lists of the query (the hash pre-filter)."""
        candidate_sets: List[Set[int]] = []
        for node in query.nodes():
            candidate_sets.append(self._label_tids.get(node.label, set()))
        for parent, child, axis in query.edges():
            if axis == AXIS_CHILD:
                candidate_sets.append(self._edge_tids.get((parent.label, child.label), set()))
        if not candidate_sets:
            return set()
        candidates = set(candidate_sets[0])
        for other in candidate_sets[1:]:
            candidates &= other
            if not candidates:
                break
        return candidates

    # ------------------------------------------------------------------
    def execute(self, query: QueryTree) -> QueryResult:
        """Evaluate *query*: pre-filter, path matching, then post-validation."""
        started = time.perf_counter()
        candidates = self._prefilter(query)
        if candidates:
            for path in self._query_paths(query):
                candidates &= self._tids_with_path_prefix(path)
                if not candidates:
                    break

        matches: Dict[int, int] = {}
        for tid in sorted(candidates):
            tree = self._store.get(tid)
            count = count_matches(query.root, tree)
            if count:
                matches[tid] = count

        stats = ExecutionStats(
            coding="atreegrep",
            strategy="path-suffix",
            cover_size=len(self._query_paths(query)),
            join_count=0,
            postings_fetched=0,
            candidates_filtered=len(candidates),
            elapsed_seconds=time.perf_counter() - started,
        )
        return QueryResult(matches_per_tree=matches, stats=stats)
