"""The node approach: an LPath-style interval index over single node labels.

LPath (Bird et al.) stores the structural information of individual nodes in
a relational store and evaluates queries with structural joins.  This module
reproduces that design on top of the same disk B+Tree used by the subtree
index: one posting list per node *label*, each posting carrying the node's
``(tid, pre, post, level)`` record, and MPMGJN-style merge joins between the
lists of adjacent query nodes.

It is also, by construction, what the subtree index degenerates to at
``mss = 1`` -- the comparison the paper draws in Section 6.3.1.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional

from repro.coding.root_split import RootPosting, RootSplitCoding
from repro.exec.executor import ExecutionStats, QueryResult
from repro.exec.joins import BindingRow, deduplicate_rows, merge_join_bindings
from repro.query.model import QueryNode, QueryTree
from repro.storage.bptree import BPlusTree
from repro.trees.matching import AXIS_CHILD
from repro.trees.node import ParseTree
from repro.trees.numbering import number_tree


class NodeIntervalIndex:
    """Disk-based inverted index over node labels with interval codes."""

    def __init__(self, tree: BPlusTree):
        self._tree = tree
        self._coding = RootSplitCoding()

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, trees: Iterable[ParseTree], path: str) -> "NodeIntervalIndex":
        """Build the label index over *trees* at *path*."""
        postings: Dict[str, List[RootPosting]] = {}
        for tree in trees:
            codes = number_tree(tree)
            for node in tree.preorder():
                code = codes[id(node)]
                postings.setdefault(node.label, []).append(
                    RootPosting(tree.tid, code.pre, code.post, code.level)
                )
        coding = RootSplitCoding()
        items = [
            (label.encode("utf-8"), coding.encode_postings(plist))
            for label, plist in sorted(postings.items())
        ]
        btree = BPlusTree(path)
        btree.bulk_load(items)
        btree.flush()
        return cls(btree)

    @classmethod
    def open(cls, path: str) -> "NodeIntervalIndex":
        """Open an existing label index."""
        return cls(BPlusTree(path))

    def close(self) -> None:
        """Close the underlying B+Tree."""
        self._tree.close()

    def size_bytes(self) -> int:
        """Size of the index file in bytes."""
        return self._tree.size_bytes()

    # ------------------------------------------------------------------
    def postings(self, label: str) -> List[RootPosting]:
        """Posting list of a node label (empty when the label never occurs)."""
        raw = self._tree.get(label.encode("utf-8"))
        if raw is None:
            return []
        return self._coding.decode_postings(raw)

    def label_frequency(self, label: str) -> int:
        """Number of nodes carrying *label* across the corpus."""
        return len(self.postings(label))

    # ------------------------------------------------------------------
    def execute(self, query: QueryTree) -> QueryResult:
        """Evaluate *query* with one structural join per query edge."""
        started = time.perf_counter()
        rows, fetched = self._join_query(query)
        matches: Dict[int, set] = {}
        root_id = query.root.node_id
        for tid, binding in rows:
            matches.setdefault(tid, set()).add(binding[root_id].pre)
        stats = ExecutionStats(
            coding="node-interval",
            strategy="mpmgjn",
            cover_size=query.size(),
            join_count=max(0, query.size() - 1),
            postings_fetched=fetched,
            elapsed_seconds=time.perf_counter() - started,
        )
        return QueryResult(
            matches_per_tree={tid: len(pres) for tid, pres in matches.items()}, stats=stats
        )

    def _join_query(self, query: QueryTree) -> tuple[List[BindingRow], int]:
        """Join the label posting lists along the query's edges in pre-order."""
        fetched = 0
        rows: Optional[List[BindingRow]] = None
        for node in query.nodes():
            postings = self.postings(node.label)
            fetched += len(postings)
            node_rows: List[BindingRow] = [
                (posting.tid, {node.node_id: posting.code}) for posting in postings
            ]
            if rows is None:
                rows = node_rows
                continue
            parent = node.parent
            axis = node.parent_axis or AXIS_CHILD
            rows = merge_join_bindings(
                rows, node_rows, _edge_predicate(parent, node, axis)
            )
            rows = deduplicate_rows(rows)
            if not rows:
                return [], fetched
        return rows or [], fetched


def _edge_predicate(parent: QueryNode, child: QueryNode, axis: str):
    """Predicate enforcing the structural relation of one query edge."""
    parent_id = parent.node_id
    child_id = child.node_id
    parent_only = axis == AXIS_CHILD

    def predicate(left, right) -> bool:
        ancestor = left.get(parent_id)
        descendant = right.get(child_id)
        if ancestor is None or descendant is None:  # pragma: no cover - defensive
            return True
        if not ancestor.is_ancestor_of(descendant):
            return False
        return not parent_only or ancestor.level == descendant.level - 1

    return predicate
