"""TGrep2 / CorpusSearch style full-scan query evaluation.

Section 2 of the paper: "TGrep2 and CorpusSearch load the corpus in the main
memory and scan the entire corpus to evaluate each query.  Thus, their
querying performance degrades over larger corpora and they cannot scale."
This baseline reproduces exactly that behaviour: the whole corpus is held in
memory and every query visits every tree with the reference matcher.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.corpus.store import Corpus
from repro.exec.executor import ExecutionStats, QueryResult
from repro.query.model import QueryTree
from repro.trees.matching import count_matches
from repro.trees.node import ParseTree


@dataclass
class TGrepScanner:
    """An in-memory, scan-everything query engine."""

    corpus: Corpus

    @classmethod
    def from_trees(cls, trees: Iterable[ParseTree]) -> "TGrepScanner":
        """Build a scanner holding the given trees in memory."""
        return cls(Corpus(trees))

    # ------------------------------------------------------------------
    def execute(self, query: QueryTree) -> QueryResult:
        """Scan every tree of the corpus and count the query's matches."""
        started = time.perf_counter()
        matches: Dict[int, int] = {}
        for tree in self.corpus:
            count = count_matches(query.root, tree)
            if count:
                matches[tree.tid] = count
        stats = ExecutionStats(
            coding="tgrep-scan",
            strategy="full-scan",
            cover_size=1,
            join_count=0,
            postings_fetched=0,
            candidates_filtered=len(self.corpus),
            elapsed_seconds=time.perf_counter() - started,
        )
        return QueryResult(matches_per_tree=matches, stats=stats)

    def execute_many(self, queries: Iterable[QueryTree]) -> List[QueryResult]:
        """Evaluate several queries, scanning the corpus once per query."""
        return [self.execute(query) for query in queries]
