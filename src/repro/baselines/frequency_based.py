"""The frequency-based approach: a TreePi adaptation for parse trees.

TreePi (Zhang et al., ICDE 2007) indexes *frequent* subtrees and prunes the
candidate set with them, finding actual matches by post-validation.  The
paper adapts it to parse trees (Section 6.3.2): the index stores all single
nodes plus the top-x% most frequent subtrees of sizes ``2..mss``; queries are
decomposed preferring indexed subtrees, the tid lists of the chosen keys are
intersected, and the candidates are validated with the exact matcher.

The cut-off fraction ``x`` (0.1 %, 1 %, 10 % in Table 2) controls the
trade-off between index size and pruning power.
"""

from __future__ import annotations

import time
from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.core.enumeration import enumerate_key_occurrences
from repro.corpus.store import Corpus, TreeStore
from repro.exec.executor import ExecutionStats, QueryResult
from repro.exec.joins import intersect_sorted_tid_lists
from repro.query.covers import Cover
from repro.query.decompose import optimal_cover
from repro.query.model import QueryTree
from repro.trees.matching import count_matches
from repro.trees.node import ParseTree


class FrequencyBasedIndex:
    """Single nodes plus the most frequent subtrees, with post-validation."""

    def __init__(
        self,
        mss: int,
        frequency_cutoff: float,
        tid_lists: Dict[bytes, List[int]],
        store: Corpus | TreeStore,
    ):
        self.mss = mss
        self.frequency_cutoff = frequency_cutoff
        self._tid_lists = tid_lists
        self._store = store

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        trees: Iterable[ParseTree],
        store: Corpus | TreeStore,
        mss: int = 3,
        frequency_cutoff: float = 0.01,
    ) -> "FrequencyBasedIndex":
        """Build the index keeping single nodes and the top *frequency_cutoff* subtrees.

        ``frequency_cutoff`` is the fraction of larger (size >= 2) unique
        subtrees retained, ranked by their occurrence count.
        """
        occurrence_counts: Counter = Counter()
        tid_sets: Dict[bytes, Set[int]] = {}
        key_sizes: Dict[bytes, int] = {}
        for tree in trees:
            for key, occurrence in enumerate_key_occurrences(tree, mss):
                occurrence_counts[key] += 1
                key_sizes[key] = occurrence.size
                tid_sets.setdefault(key, set()).add(occurrence.tid)

        single_keys = [key for key, size in key_sizes.items() if size == 1]
        larger_keys = [key for key, size in key_sizes.items() if size > 1]
        larger_keys.sort(key=lambda key: occurrence_counts[key], reverse=True)
        kept_larger = larger_keys[: max(0, int(len(larger_keys) * frequency_cutoff))]

        tid_lists = {
            key: sorted(tid_sets[key]) for key in (*single_keys, *kept_larger)
        }
        return cls(mss, frequency_cutoff, tid_lists, store)

    # ------------------------------------------------------------------
    @property
    def key_count(self) -> int:
        """Number of keys retained in the index."""
        return len(self._tid_lists)

    def has_key(self, key: bytes) -> bool:
        """``True`` when the (canonical) key is retained."""
        return key in self._tid_lists

    def tids(self, key: bytes) -> Optional[List[int]]:
        """Sorted tid list of *key*, or ``None`` when the key is not retained."""
        return self._tid_lists.get(key)

    # ------------------------------------------------------------------
    def _candidate_tids(self, query: QueryTree) -> List[int]:
        """Prune candidates with the indexed subtrees of a query cover.

        The query is decomposed like the subtree index would (preferring
        larger subtrees); cover subtrees missing from the frequency index
        fall back to their individual node labels.
        """
        cover: Cover = optimal_cover(query, self.mss, pad=False)
        lists: List[Sequence[int]] = []
        for subtree in cover.subtrees:
            tids = self.tids(subtree.key_bytes())
            if tids is not None:
                lists.append(tids)
                continue
            for node in subtree.query_nodes():
                node_tids = self.tids(node.label.encode("utf-8"))
                lists.append(node_tids if node_tids is not None else [])
        return intersect_sorted_tid_lists(lists)

    def execute(self, query: QueryTree) -> QueryResult:
        """Evaluate *query*: candidate pruning followed by post-validation."""
        started = time.perf_counter()
        candidates = self._candidate_tids(query)
        matches: Dict[int, int] = {}
        for tid in candidates:
            tree = self._store.get(tid)
            count = count_matches(query.root, tree)
            if count:
                matches[tid] = count
        stats = ExecutionStats(
            coding=f"frequency-based({self.frequency_cutoff:g})",
            strategy="treepi",
            cover_size=0,
            join_count=0,
            postings_fetched=0,
            candidates_filtered=len(candidates),
            elapsed_seconds=time.perf_counter() - started,
        )
        return QueryResult(matches_per_tree=matches, stats=stats)
